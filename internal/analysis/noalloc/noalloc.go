// Package noalloc implements the misvet check behind the
// //misvet:noalloc function annotation. The steady-state round loop
// must not allocate: internal/sim/alloc_test.go proves it
// dynamically by differencing runs of different lengths, but that
// test fires after the regression is written and points at a run, not
// a line. This analyzer flags the allocating constructs themselves —
// make/new, append (may grow), slice/map composite literals, closures,
// string concatenation, string<->slice conversions, interface boxing,
// go/defer statements, map writes — inside every annotated function
// and every same-package function reachable from one by direct call
// or method-value reference.
//
// Escape analysis is deliberately not modeled: a construct the
// compiler provably stack-allocates still gets flagged and carries a
// //misvet:allow(noalloc) justification saying so. The annotation is
// a statement of intent about the hot path; rare cold branches inside
// it (error paths, one-time lazy setup) suppress with a reason.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/types"

	"beepmis/internal/analysis"
)

// New returns the noalloc analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "noalloc",
		Doc:  "flag allocating constructs in //misvet:noalloc functions and their same-package callees",
		Run: func(pass *analysis.Pass) error {
			run(pass)
			return nil
		},
	}
}

// funcInfo is one package-level function (or method) with a body.
type funcInfo struct {
	decl  *ast.FuncDecl
	label string // display name: recv.name for methods
}

func run(pass *analysis.Pass) {
	funcs := make(map[*types.Func]*funcInfo)
	var annotated []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcs[obj] = &funcInfo{decl: fd, label: label(fd)}
			if analysis.HasNoallocDirective(fd.Doc) {
				annotated = append(annotated, obj)
			}
		}
	}
	if len(annotated) == 0 {
		return
	}

	// Reach every same-package function a noalloc body can enter, by
	// direct call or by method-value/function-value reference (the
	// round loop hands method values to the shard pool, which calls
	// them later — the body still runs on the hot path).
	origin := make(map[*types.Func]string)
	queue := make([]*types.Func, 0, len(annotated))
	for _, root := range annotated {
		origin[root] = funcs[root].label
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		ast.Inspect(funcs[cur].decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || callee.Pkg() != pass.Pkg {
				return true
			}
			if _, known := funcs[callee]; !known {
				return true
			}
			if _, seen := origin[callee]; !seen {
				origin[callee] = origin[cur]
				queue = append(queue, callee)
			}
			return true
		})
	}

	for fn, root := range origin {
		info := funcs[fn]
		where := fmt.Sprintf("//misvet:noalloc function %s", info.label)
		if root != info.label {
			where = fmt.Sprintf("%s (on the //misvet:noalloc path of %s)", info.label, root)
		}
		checkBody(pass, info.decl, where)
	}
}

func label(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return types.ExprString(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// checkBody flags the allocating constructs of one function body.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, where string) {
	sig, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	var results *types.Tuple
	if sig != nil {
		results = sig.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in %s", where)
			return false // constructs inside the literal are the closure's problem
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in %s", where)
				return false
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in %s", where)
				return false
			}
		case *ast.CallExpr:
			checkCall(pass, n, where)
		case *ast.BinaryExpr:
			checkConcat(pass, n, where)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine in %s", where)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer may allocate its frame in %s", where)
		case *ast.AssignStmt:
			checkAssign(pass, n, where)
		case *ast.ValueSpec:
			checkValueSpec(pass, n, where)
		case *ast.ReturnStmt:
			checkReturn(pass, n, results, where)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, where string) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in %s", where)
			case "new":
				pass.Reportf(call.Pos(), "new allocates in %s", where)
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in %s", where)
			}
			return
		}
	}
	// Conversions.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := pass.TypesInfo.TypeOf(call.Args[0])
		switch dst.Underlying().(type) {
		case *types.Slice:
			if src != nil {
				if b, ok := src.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					pass.Reportf(call.Pos(), "string-to-slice conversion allocates in %s", where)
				}
			}
		case *types.Basic:
			if dst.Underlying().(*types.Basic).Info()&types.IsString != 0 && src != nil {
				if _, ok := src.Underlying().(*types.Slice); ok {
					pass.Reportf(call.Pos(), "slice-to-string conversion allocates in %s", where)
				}
			}
		}
		if boxes(pass, dst, call.Args[0]) {
			pass.Reportf(call.Pos(), "conversion to interface boxes its operand in %s", where)
		}
		return
	}
	// Interface boxing at argument positions.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(pass, pt, arg) {
			pass.Reportf(arg.Pos(), "argument boxes into interface parameter in %s", where)
		}
	}
}

func checkConcat(pass *analysis.Pass, be *ast.BinaryExpr, where string) {
	if be.Op.String() != "+" {
		return
	}
	tv, ok := pass.TypesInfo.Types[be]
	if !ok || tv.Value != nil { // constant-folded concat is free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		pass.Reportf(be.Pos(), "string concatenation allocates in %s", where)
	}
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, where string) {
	for i, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := pass.TypesInfo.TypeOf(ix.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(lhs.Pos(), "map assignment may grow the table in %s", where)
				}
			}
		}
		if as.Tok.String() == "=" && i < len(as.Rhs) && len(as.Lhs) == len(as.Rhs) {
			if boxes(pass, pass.TypesInfo.TypeOf(lhs), as.Rhs[i]) {
				pass.Reportf(as.Rhs[i].Pos(), "assignment boxes into interface in %s", where)
			}
		}
	}
}

func checkValueSpec(pass *analysis.Pass, vs *ast.ValueSpec, where string) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	dst := pass.TypesInfo.TypeOf(vs.Type)
	for _, v := range vs.Values {
		if boxes(pass, dst, v) {
			pass.Reportf(v.Pos(), "declaration boxes into interface in %s", where)
		}
	}
}

func checkReturn(pass *analysis.Pass, rs *ast.ReturnStmt, results *types.Tuple, where string) {
	if results == nil || len(rs.Results) != results.Len() {
		return
	}
	for i, r := range rs.Results {
		if boxes(pass, results.At(i).Type(), r) {
			pass.Reportf(r.Pos(), "return boxes into interface in %s", where)
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst
// converts a concrete value to an interface (an allocation for
// anything the runtime does not intern).
func boxes(pass *analysis.Pass, dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return false
	}
	return true
}
