package noalloc_test

import (
	"testing"

	"beepmis/internal/analysis/analysistest"
	"beepmis/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.New(), "noallocfix")
}
