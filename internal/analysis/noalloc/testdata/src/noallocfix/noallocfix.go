// Package noallocfix exercises the noalloc analyzer: allocating
// constructs inside //misvet:noalloc functions and their same-package
// callees are findings; preallocated-buffer code, unannotated cold
// code, and a justified suppression are not.
package noallocfix

type ring struct {
	buf []int
	n   int
}

// Push is the true positive: growing the buffer allocates on the hot
// path.
//
//misvet:noalloc
func (r *ring) Push(v int) {
	r.buf = append(r.buf, v) // want "append may grow its backing array"
}

// Store is the fix: write into the preallocated buffer.
//
//misvet:noalloc
func (r *ring) Store(v int) {
	r.buf[r.n%len(r.buf)] = v
	r.n++
	r.tally(v)
}

// tally is reached from Store, so its body is checked without an
// annotation of its own — and so is grow's, one hop further.
func (r *ring) tally(v int) {
	if v < 0 {
		r.grow()
	}
}

func (r *ring) grow() {
	r.buf = make([]int, 2*len(r.buf)) // want "make allocates"
}

// fill is annotated but its one allocation is a documented cold
// branch; the suppression is honored and produces no finding.
//
//misvet:noalloc
func (r *ring) fill() {
	if r.buf == nil {
		//misvet:allow(noalloc) one-time lazy setup: runs on the first call only, never in steady state
		r.buf = make([]int, 8)
	}
	for i := range r.buf {
		r.buf[i] = 0
	}
}

// Idle is neither annotated nor reachable from an annotated function,
// so its allocation is not a finding.
func Idle() []int {
	return make([]int, 4)
}
