package metricname_test

import (
	"testing"

	"beepmis/internal/analysis/analysistest"
	"beepmis/internal/analysis/metricname"
)

func TestMetricname(t *testing.T) {
	analysistest.Run(t, "testdata", metricname.New("metricfix/obs"), "metricfix/use")
}
