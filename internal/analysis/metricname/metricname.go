// Package metricname implements the misvet check that metric names
// registered with obs.Registry satisfy the Prometheus name grammar at
// compile time. The registry already panics on a bad name — but a
// panic at process setup is discovered by running the binary, and a
// registration behind a rarely-taken branch can ship broken. The
// grammar here mirrors obs.nameRe / obs.labelRe exactly; if either
// changes, change both (registry_test pins the runtime side).
package metricname

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"beepmis/internal/analysis"
)

// DefaultObsPath is the registry's home package.
const DefaultObsPath = "beepmis/internal/obs"

// registerMethods maps obs.Registry method names to the index of
// their name argument (the labels argument follows it).
var registerMethods = map[string]bool{
	"RegisterCounter":   true,
	"RegisterGauge":     true,
	"RegisterGaugeFunc": true,
	"RegisterHistogram": true,
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*$`)
)

// New returns the metricname analyzer. obsPath overrides the registry
// package (tests point it at a fixture); "" means DefaultObsPath.
func New(obsPath string) *analysis.Analyzer {
	if obsPath == "" {
		obsPath = DefaultObsPath
	}
	return &analysis.Analyzer{
		Name: "metricname",
		Doc:  "metric names registered with obs.Registry must satisfy the Prometheus grammar at compile time",
		Run: func(pass *analysis.Pass) error {
			run(pass, obsPath)
			return nil
		},
	}
}

func run(pass *analysis.Pass, obsPath string) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			check(pass, obsPath, call)
			return true
		})
	}
}

func check(pass *analysis.Pass, obsPath string, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !registerMethods[sel.Sel.Name] || len(call.Args) < 2 {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	// Name argument: must be a compile-time constant in the grammar.
	if name, isConst := constString(pass, call.Args[0]); !isConst {
		pass.Reportf(call.Args[0].Pos(), "metric name is not a compile-time constant; the Prometheus grammar cannot be machine-checked (or the name hidden behind it ships a registration panic)")
	} else if !nameRe.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(), "metric name %q violates the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*; registration will panic", name)
	}
	// Label argument: checked only when constant and non-empty —
	// dynamic label values (per-phase series) are validated at
	// registration.
	if labels, isConst := constString(pass, call.Args[1]); isConst && labels != "" && !labelRe.MatchString(labels) {
		pass.Reportf(call.Args[1].Pos(), "label set %q violates the Prometheus grammar key=\"value\"(,key=\"value\")*; registration will panic", labels)
	}
}

// constString evaluates expr as a compile-time string constant.
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
