// Package obs is a fixture stand-in for beepmis/internal/obs: a
// registry whose Register methods take (name, labels, ...) strings.
package obs

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) RegisterCounter(name, labels, help string) *Counter { return &Counter{} }

func (r *Registry) RegisterGauge(name, labels, help string) *Gauge { return &Gauge{} }

func (r *Registry) RegisterGaugeFunc(name, labels, help string, fn func() float64) {}

func (r *Registry) RegisterHistogram(name, labels, help string, buckets []float64) *Histogram {
	return &Histogram{}
}
