// Package use exercises the metricname analyzer against the fixture
// registry: grammar-violating constant names and labels, and names
// the analyzer cannot see through, are findings; valid names and a
// justified suppression are not.
package use

import "metricfix/obs"

// Bad is the true positive: a hyphen violates the Prometheus grammar
// and the registration panics at process setup.
func Bad(r *obs.Registry) {
	r.RegisterCounter("rounds-total", "", "rounds") // want "violates the Prometheus grammar"
}

// Good is the fix.
func Good(r *obs.Registry) {
	r.RegisterCounter("rounds_total", "", "rounds")
}

// ConstFolded names are still compile-time constants, so they are
// checked and pass.
const prefix = "beepmis_"

func Prefixed(r *obs.Registry) {
	r.RegisterGauge(prefix+"queue_depth", "", "depth")
}

func BadLabels(r *obs.Registry) {
	r.RegisterGauge("queue_depth", "shard=0", "depth") // want "label set .* violates the Prometheus grammar"
}

func Dynamic(r *obs.Registry, name string) {
	r.RegisterCounter(name, "", "dynamic") // want "not a compile-time constant"
}

// FromTable registers names drawn from a static table the analyzer
// cannot see through; the table's own test validates the grammar, so
// the suppression is honored.
func FromTable(r *obs.Registry, names []string) {
	for _, name := range names {
		//misvet:allow(metricname) names come from a static table whose own test checks the grammar
		r.RegisterCounter(name, "", "table")
	}
}
