// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named
// check with a Run function over one type-checked package, a Pass
// hands it the syntax and type information, and diagnostics are
// position + message pairs the driver prints.
//
// The repository's invariants — bit-identical results across engines,
// a zero-allocation steady-state round loop, a lock-free metrics core,
// content-hash-stable canonical specs — were previously enforced only
// by runtime tests that fire after a violation is written, often far
// from the offending line. The analyzers in the subpackages encode
// those invariants as compile-time checks; cmd/misvet is the driver.
//
// x/tools itself is deliberately not imported: the module is
// dependency-free by policy (see internal/rng for the same stance),
// and the subset of the framework these five analyzers need — one
// pass per package, a shared types.Info, line-anchored suppressions —
// is small. The API shapes match x/tools closely enough that porting
// onto the real framework later is mechanical.
//
// # Suppressions
//
// A finding is suppressed by a comment on the offending line, or on
// the line directly above it:
//
//	//misvet:allow(<analyzer>) <reason>
//
// The reason is mandatory: an allow without one is itself reported,
// as is an allow that no finding ever matched (stale suppressions rot
// into lies about the code). The analyzer name must be one of the
// registered checks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position in the shared FileSet and a
// human-readable message. Analyzer is stamped by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries everything an Analyzer's Run may inspect for one
// package: parsed files, the type-checked package, and its Info. The
// FileSet is shared across every pass of a driver invocation, so
// token.Pos values from different packages are comparable.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos. The driver applies suppression
// filtering afterwards; analyzers just report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Analyzer is one named check. Run is invoked once per package; End,
// when non-nil, is invoked once after every package has been analyzed
// — the hook cross-package analyzers (atomicfield) use to report
// findings that need the whole program's access sites.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	End  func(report func(Diagnostic))
}

// RunPackage executes a on one loaded package, appending raw
// (unsuppressed) diagnostics to sink.
func RunPackage(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink *[]Diagnostic) error {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    func(d Diagnostic) { *sink = append(*sink, d) },
	}
	return a.Run(pass)
}

// AllowPrefix is the suppression directive; the analyzer name follows
// in parentheses, then the mandatory justification.
const AllowPrefix = "//misvet:allow("

// NoallocDirective marks a function whose body (and same-package
// callees) the noalloc analyzer checks for allocating constructs.
const NoallocDirective = "//misvet:noalloc"

// Allow is one parsed //misvet:allow directive.
type Allow struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
	File     string
	Line     int
	Used     bool
}

// Suppressions indexes every //misvet:allow directive of a program by
// (file, line) so diagnostics can be matched against them.
type Suppressions struct {
	byLine map[string]map[int]*Allow
	all    []*Allow
}

// NewSuppressions returns an empty index.
func NewSuppressions() *Suppressions {
	return &Suppressions{byLine: make(map[string]map[int]*Allow)}
}

// Collect parses the misvet:allow directives of files into s. Files
// must have been parsed with comments.
func (s *Suppressions) Collect(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowPrefix)
				if !ok {
					continue
				}
				name, reason, _ := strings.Cut(rest, ")")
				pos := fset.Position(c.Pos())
				a := &Allow{
					Analyzer: strings.TrimSpace(name),
					Reason:   strings.TrimSpace(reason),
					Pos:      c.Pos(),
					File:     pos.Filename,
					Line:     pos.Line,
				}
				lines := s.byLine[a.File]
				if lines == nil {
					lines = make(map[int]*Allow)
					s.byLine[a.File] = lines
				}
				lines[a.Line] = a
				s.all = append(s.all, a)
			}
		}
	}
}

// Match reports whether a diagnostic from analyzer at pos is covered
// by an allow on the same line or the line directly above, and marks
// that allow used. An allow with an empty reason never suppresses —
// unjustified silence is not silence.
func (s *Suppressions) Match(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := s.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if a := lines[line]; a != nil && a.Analyzer == analyzer && a.Reason != "" {
			a.Used = true
			return true
		}
	}
	return false
}

// Problems returns the diagnostics the suppression index itself
// raises: allows without a justification, allows naming an unknown
// analyzer, and (when checkUnused) allows that no finding matched.
func (s *Suppressions) Problems(known map[string]bool, checkUnused bool) []Diagnostic {
	var out []Diagnostic
	for _, a := range s.all {
		switch {
		case !known[a.Analyzer]:
			out = append(out, Diagnostic{Pos: a.Pos, Analyzer: "misvet",
				Message: fmt.Sprintf("misvet:allow names unknown analyzer %q", a.Analyzer)})
		case a.Reason == "":
			out = append(out, Diagnostic{Pos: a.Pos, Analyzer: "misvet",
				Message: fmt.Sprintf("misvet:allow(%s) carries no justification; write the reason after the closing parenthesis", a.Analyzer)})
		case checkUnused && !a.Used:
			out = append(out, Diagnostic{Pos: a.Pos, Analyzer: "misvet",
				Message: fmt.Sprintf("misvet:allow(%s) suppresses nothing; delete the stale directive", a.Analyzer)})
		}
	}
	return out
}

// SortDiagnostics orders diagnostics by file, line, column, then
// message — the stable order the driver prints and tests assert.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Message < ds[j].Message
	})
}

// HasNoallocDirective reports whether doc contains the
// //misvet:noalloc directive on a line of its own.
func HasNoallocDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, NoallocDirective)
		if ok && (text == "" || text[0] == ' ' || text[0] == '\t') {
			return true
		}
	}
	return false
}
