package atomicfield_test

import (
	"testing"

	"beepmis/internal/analysis/analysistest"
	"beepmis/internal/analysis/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.New(), "atomicfix")
}
