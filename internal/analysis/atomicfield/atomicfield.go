// Package atomicfield implements the misvet check that guards the
// lock-free metrics core: a struct field accessed through sync/atomic
// anywhere in the program must be accessed atomically everywhere. A
// single plain load next to atomic stores is a data race the race
// detector only catches if a test happens to interleave it; this
// analyzer catches it at the access site.
//
// Fields of the atomic.Int64-style wrapper types (what internal/obs
// uses) are safe by construction — the wrappers have no plain access
// path — so the check concerns the older &struct.field API.
//
// The check is whole-program: Run collects atomic and plain access
// sites per package, End reports conflicts once every package has
// been seen. Under a per-package driver (go vet -vettool) it
// degrades to per-unit checking, which still covers the common case
// of a field and its accessors living in one package.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"beepmis/internal/analysis"
)

// access is one syntactic touch of a tracked field.
type access struct {
	pos token.Pos
	str string // file:line for cross-referencing in messages
}

// New returns a fresh atomicfield analyzer. State accumulates across
// Run calls and is reported by End, so drivers must construct a new
// analyzer per invocation.
func New() *analysis.Analyzer {
	atomicUse := make(map[*types.Var]access)
	plainUse := make(map[*types.Var][]access)
	a := &analysis.Analyzer{
		Name: "atomicfield",
		Doc:  "a struct field accessed via sync/atomic must be accessed atomically everywhere",
	}
	a.Run = func(pass *analysis.Pass) error {
		run(pass, atomicUse, plainUse)
		return nil
	}
	a.End = func(report func(analysis.Diagnostic)) {
		fields := make([]*types.Var, 0, len(atomicUse))
		for f := range atomicUse {
			fields = append(fields, f)
		}
		sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
		for _, f := range fields {
			for _, p := range plainUse[f] {
				report(analysis.Diagnostic{
					Pos:      p.pos,
					Analyzer: a.Name,
					Message: "field " + f.Name() + " is accessed with sync/atomic (e.g. at " +
						atomicUse[f].str + ") but accessed plainly here; mixed access races",
				})
			}
		}
	}
	return a
}

func run(pass *analysis.Pass, atomicUse map[*types.Var]access, plainUse map[*types.Var][]access) {
	// Selector expressions consumed as &x.f arguments of atomic calls;
	// they are the sanctioned access path, not plain uses.
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := atomicFieldArg(pass, call); f != nil {
				sel := ast.Unparen(call.Args[0]).(*ast.UnaryExpr).X.(*ast.SelectorExpr)
				sanctioned[sel] = true
				if _, seen := atomicUse[f]; !seen {
					atomicUse[f] = access{pos: call.Pos(), str: position(pass, call.Pos())}
				}
			}
			return true
		})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			if f := fieldObj(pass, sel); f != nil {
				plainUse[f] = append(plainUse[f], access{pos: sel.Sel.Pos(), str: position(pass, sel.Sel.Pos())})
			}
			return true
		})
	}
}

// atomicFieldArg returns the field object when call is
// atomic.Op(&x.f, ...), nil otherwise.
func atomicFieldArg(pass *analysis.Pass, call *ast.CallExpr) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if !isAtomicOp(obj.Name()) || len(call.Args) == 0 {
		return nil
	}
	un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	fsel, ok := un.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldObj(pass, fsel)
}

func isAtomicOp(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// fieldObj resolves sel to a struct-field variable, nil otherwise.
func fieldObj(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

func position(pass *analysis.Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return p.Filename + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
