// Package atomicfix exercises the atomicfield analyzer: a struct
// field accessed through sync/atomic anywhere must be accessed
// atomically everywhere; purely-plain fields and a justified
// suppression are fine.
package atomicfix

import "sync/atomic"

type counter struct {
	hits  uint64
	total uint64
	cold  uint64
}

func (c *counter) Inc() {
	atomic.AddUint64(&c.hits, 1)
}

// Snapshot is the true positive: a plain read racing the atomic adds.
func (c *counter) Snapshot() uint64 {
	return c.hits // want "field hits is accessed with sync/atomic"
}

// SnapshotFixed is the fix: read through the same atomic API.
func (c *counter) SnapshotFixed() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counter) AddTotal(n uint64) {
	atomic.AddUint64(&c.total, n)
}

// Reset runs before the counter escapes its constructor, so the plain
// write cannot race; the suppression is honored.
func (c *counter) Reset() {
	//misvet:allow(atomicfield) runs inside the constructor, before the counter is visible to any other goroutine
	c.total = 0
}

// Cold is never touched atomically anywhere, so plain access is not a
// finding.
func (c *counter) Cold() uint64 {
	c.cold++
	return c.cold
}
