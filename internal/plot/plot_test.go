package plot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	out, err := Render([]Series{
		{Name: "up", Xs: []float64{1, 2, 3}, Ys: []float64{1, 2, 3}},
		{Name: "down", Xs: []float64{1, 2, 3}, Ys: []float64{3, 2, 1}},
	}, Options{Title: "test chart", XLabel: "x", YLabel: "y"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"test chart", "up", "down", "*", "o", "x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCustomMarker(t *testing.T) {
	out, err := Render([]Series{
		{Name: "s", Xs: []float64{0, 1}, Ys: []float64{0, 1}, Marker: '%'},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "%") {
		t.Fatalf("custom marker missing:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render(nil, Options{}); err == nil {
		t.Fatal("no series accepted")
	}
	if _, err := Render([]Series{{Name: "bad", Xs: []float64{1}, Ys: nil}}, Options{}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := Render([]Series{{Name: "empty"}}, Options{}); err == nil {
		t.Fatal("all-empty series accepted")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out, err := Render([]Series{
		{Name: "dot", Xs: []float64{5}, Ys: []float64{5}},
	}, Options{Width: 20, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	// Degenerate y-range must not divide by zero.
	out, err := Render([]Series{
		{Name: "flat", Xs: []float64{1, 2, 3}, Ys: []float64{7, 7, 7}},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestRenderDimensions(t *testing.T) {
	out, err := Render([]Series{
		{Name: "s", Xs: []float64{0, 10}, Ys: []float64{0, 10}},
	}, Options{Width: 30, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 8 canvas rows + axis + x labels + legend.
	if len(lines) < 11 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}
