// Package plot renders simple ASCII scatter/line charts in a terminal,
// used by the experiment CLI to display Figure 3 / Figure 5 style series
// without any graphics dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted data set.
type Series struct {
	// Name appears in the legend.
	Name string
	// Xs and Ys are the coordinates; lengths must match.
	Xs, Ys []float64
	// Marker is the glyph for this series; 0 picks a default.
	Marker rune
}

// defaultMarkers are assigned to series without an explicit marker.
var defaultMarkers = []rune{'*', 'o', '+', 'x', '#', '@'}

// Options controls rendering.
type Options struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Width and Height are the plotting area in characters; zero values
	// default to 64×20.
	Width, Height int
}

// Render draws the series onto an ASCII canvas. Series with mismatched
// coordinate lengths or no data yield an error.
func Render(series []Series, opts Options) (string, error) {
	width := opts.Width
	if width <= 0 {
		width = 64
	}
	height := opts.Height
	if height <= 0 {
		height = 20
	}
	if len(series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range series {
		if len(s.Xs) != len(s.Ys) {
			return "", fmt.Errorf("plot: series %q has %d x but %d y values", s.Name, len(s.Xs), len(s.Ys))
		}
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if first {
		return "", fmt.Errorf("plot: all series empty")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	canvas := make([][]rune, height)
	for r := range canvas {
		canvas[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.Xs {
			col := int(math.Round((s.Xs[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Ys[i]-ymin)/(ymax-ymin)*float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				canvas[row][col] = marker
			}
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opts.YLabel)
	}
	yTopLabel := fmt.Sprintf("%8.4g", ymax)
	yBotLabel := fmt.Sprintf("%8.4g", ymin)
	for r, row := range canvas {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%s |%s\n", yTopLabel, string(row))
		case height - 1:
			fmt.Fprintf(&b, "%s |%s\n", yBotLabel, string(row))
		default:
			fmt.Fprintf(&b, "%8s |%s\n", "", string(row))
		}
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-10.4g%s%10.4g\n", "", xmin,
		strings.Repeat(" ", maxInt(0, width-20)), xmax)
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "%8s  %s\n", "", opts.XLabel)
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "%8s  %c %s\n", "", marker, s.Name)
	}
	return b.String(), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
