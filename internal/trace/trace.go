// Package trace records beeping-model executions round-by-round and
// serialises them as JSON Lines, so a run can be archived, diffed,
// re-rendered (cmd/misviz -replay), or analysed offline without
// re-simulating. Recordings are small: one line per round with states,
// beeps and (when available) per-node probabilities.
package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"beepmis/internal/beep"
	"beepmis/internal/sim"
)

// Event is one recorded time step.
type Event struct {
	// Round is the 1-based step index.
	Round int `json:"round"`
	// States holds each node's state code after the step (see
	// beep.State).
	States []uint8 `json:"states"`
	// Beeped marks nodes that beeped in the first exchange.
	Beeped []bool `json:"beeped"`
	// Probs holds the per-node beep probabilities going into the next
	// step; omitted when the automaton does not report them. NaNs are
	// encoded as -1 (JSON has no NaN).
	Probs []float64 `json:"probs,omitempty"`
	// Active is the number of still-active nodes after the step.
	Active int `json:"active"`
}

// Header describes the recorded run.
type Header struct {
	// N is the node count.
	N int `json:"n"`
	// Algorithm names the schedule that ran.
	Algorithm string `json:"algorithm"`
	// Seed is the master randomness seed.
	Seed uint64 `json:"seed"`
	// Meta carries arbitrary caller annotations (e.g. grid dimensions
	// for re-rendering).
	Meta map[string]string `json:"meta,omitempty"`
}

// Recording is a full captured execution.
type Recording struct {
	// Header describes the run.
	Header Header
	// Events are the per-round records, in order.
	Events []Event
}

// Recorder returns a sim.Options.OnRound hook that appends every round
// to rec. The hook copies all slices: snapshots are reused by the
// simulator.
func Recorder(rec *Recording) func(sim.Snapshot) {
	return func(s sim.Snapshot) {
		ev := Event{
			Round:  s.Round,
			States: make([]uint8, len(s.States)),
			Beeped: append([]bool(nil), s.Beeped...),
			Active: s.Active,
		}
		for i, st := range s.States {
			ev.States[i] = uint8(st)
		}
		if s.Probabilities != nil {
			ev.Probs = make([]float64, len(s.Probabilities))
			for i, p := range s.Probabilities {
				if math.IsNaN(p) {
					p = -1
				}
				ev.Probs[i] = p
			}
		}
		rec.Events = append(rec.Events, ev)
	}
}

// State returns the decoded state of node v at event index i.
func (r *Recording) State(i, v int) beep.State { return beep.State(r.Events[i].States[v]) }

// Rounds returns the number of recorded rounds.
func (r *Recording) Rounds() int { return len(r.Events) }

// WriteJSONL writes the recording as one JSON object per line: the
// header first, then each event.
func (r *Recording) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(r.Header); err != nil {
		return fmt.Errorf("encode trace header: %w", err)
	}
	for i := range r.Events {
		if err := enc.Encode(&r.Events[i]); err != nil {
			return fmt.Errorf("encode trace event %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush trace: %w", err)
	}
	return nil
}

// ErrEmptyTrace indicates a JSONL stream with no header line.
var ErrEmptyTrace = errors.New("trace: empty stream")

// ReadJSONL parses a recording written by WriteJSONL, validating that
// event slice lengths match the header's node count.
func ReadJSONL(r io.Reader) (*Recording, error) {
	dec := json.NewDecoder(r)
	var rec Recording
	if err := dec.Decode(&rec.Header); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, ErrEmptyTrace
		}
		return nil, fmt.Errorf("decode trace header: %w", err)
	}
	if rec.Header.N < 0 {
		return nil, fmt.Errorf("trace: negative node count %d", rec.Header.N)
	}
	for i := 0; ; i++ {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("decode trace event %d: %w", i, err)
		}
		if len(ev.States) != rec.Header.N || len(ev.Beeped) != rec.Header.N {
			return nil, fmt.Errorf("trace event %d: slice lengths %d/%d do not match n=%d",
				i, len(ev.States), len(ev.Beeped), rec.Header.N)
		}
		if ev.Probs != nil && len(ev.Probs) != rec.Header.N {
			return nil, fmt.Errorf("trace event %d: %d probabilities for n=%d", i, len(ev.Probs), rec.Header.N)
		}
		rec.Events = append(rec.Events, ev)
	}
	return &rec, nil
}
