package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

func record(t *testing.T, g *graph.Graph, seed uint64) (*Recording, *sim.Result) {
	t.Helper()
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	rec := &Recording{Header: Header{N: g.N(), Algorithm: mis.NameFeedback, Seed: seed}}
	res, err := sim.Run(g, factory, rng.New(seed), sim.Options{OnRound: Recorder(rec)})
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecorderCapturesEveryRound(t *testing.T) {
	g := graph.GNP(40, 0.4, rng.New(1))
	rec, res := record(t, g, 5)
	if rec.Rounds() != res.Rounds {
		t.Fatalf("recorded %d rounds, run had %d", rec.Rounds(), res.Rounds)
	}
	// Final event must show zero active and agree with the result.
	last := rec.Events[len(rec.Events)-1]
	if last.Active != 0 {
		t.Fatalf("final event active = %d", last.Active)
	}
	for v := range res.InMIS {
		got := rec.State(len(rec.Events)-1, v) == beep.StateInMIS
		if got != res.InMIS[v] {
			t.Fatalf("node %d: trace says InMIS=%v, result %v", v, got, res.InMIS[v])
		}
	}
	// Beep counts reconstructed from the trace match the result.
	for v := range res.Beeps {
		count := 0
		for _, ev := range rec.Events {
			if ev.Beeped[v] {
				count++
			}
		}
		if count != res.Beeps[v] {
			t.Fatalf("node %d: trace beeps %d, result %d", v, count, res.Beeps[v])
		}
	}
}

func TestRecorderCopiesSnapshots(t *testing.T) {
	g := graph.Path(6)
	rec, _ := record(t, g, 2)
	if rec.Rounds() < 2 {
		t.Skip("run too short to check aliasing")
	}
	// If the recorder aliased the simulator's reused buffers, all events
	// would share identical state slices.
	same := true
	for i := 1; i < len(rec.Events); i++ {
		for v := range rec.Events[i].States {
			if rec.Events[i].States[v] != rec.Events[0].States[v] {
				same = false
			}
		}
	}
	if same && rec.Rounds() > 1 {
		t.Fatal("all recorded rounds identical — recorder aliases simulator buffers?")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	g := graph.GNP(25, 0.3, rng.New(3))
	rec, _ := record(t, g, 7)
	rec.Header.Meta = map[string]string{"rows": "5", "cols": "5"}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Header.N != rec.Header.N || back.Header.Algorithm != rec.Header.Algorithm || back.Header.Seed != rec.Header.Seed {
		t.Fatalf("header mangled: %+v", back.Header)
	}
	if back.Header.Meta["rows"] != "5" {
		t.Fatalf("meta lost: %v", back.Header.Meta)
	}
	if back.Rounds() != rec.Rounds() {
		t.Fatalf("rounds %d vs %d", back.Rounds(), rec.Rounds())
	}
	for i := range rec.Events {
		for v := range rec.Events[i].States {
			if back.Events[i].States[v] != rec.Events[i].States[v] ||
				back.Events[i].Beeped[v] != rec.Events[i].Beeped[v] {
				t.Fatalf("event %d node %d differs after round trip", i, v)
			}
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("err = %v, want ErrEmptyTrace", err)
	}
	if _, err := ReadJSONL(strings.NewReader("{bad")); err == nil {
		t.Fatal("bad header accepted")
	}
	// Mismatched event length.
	in := `{"n":3,"algorithm":"feedback","seed":1}` + "\n" +
		`{"round":1,"states":[1],"beeped":[false],"active":3}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("mismatched event accepted")
	}
	// Bad probability length.
	in = `{"n":1,"algorithm":"feedback","seed":1}` + "\n" +
		`{"round":1,"states":[1],"beeped":[false],"probs":[0.5,0.5],"active":1}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("bad probs accepted")
	}
	// Negative n.
	in = `{"n":-1,"algorithm":"feedback","seed":1}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestProbabilitiesEncodedWithoutNaN(t *testing.T) {
	g := graph.Path(4)
	rec, _ := record(t, g, 9)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("JSONL contains NaN — invalid JSON")
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Events[0].Probs == nil {
		t.Fatal("probabilities dropped")
	}
}
