// Package scenario turns declarative workload descriptions — JSON
// documents naming a graph family, a beeping algorithm, engine options,
// fault schedules, trial counts and parameter sweeps — into validated,
// executable simulation plans.
//
// A Spec is the unit of the service layer: cmd/misrun executes one from
// a file, cmd/misd accepts them over HTTP, and internal/service caches
// results by the spec's content hash. Three properties make that work:
//
//   - Validation is total and up front. Parse and Compile reject
//     malformed input (unknown families/algorithms, out-of-range
//     parameters, oversized workloads) before any simulation starts, so
//     a served scenario never fails halfway for a reason that was
//     visible in its text.
//   - The canonical form is semantic. Canonical()/Hash() strip the
//     performance-only knobs (engine, shards, workers) and apply all
//     defaults, so two specs that must produce identical results hash
//     identically — the service's cache key.
//   - Execution is deterministic. Every trial draws from rng streams
//     derived from (seed, unit, trial), aggregation happens in trial
//     order on internal/experiment's pool, and the Report JSON is a pure
//     function of the canonical spec. Equal hashes ⇒ byte-equal reports.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/sim"
)

// Workload ceilings. Scenarios arrive from untrusted input (HTTP
// bodies, user files), so the compiler bounds what a single spec may
// ask of the machine; anything larger belongs in a purpose-built
// harness, not the service layer.
const (
	// MaxNodes caps the node count of any single graph.
	MaxNodes = 1 << 20
	// MaxUnitMemory caps the estimated memory footprint of a unit's
	// simulation: the graph's adjacency lists plus the representation
	// the compiled plan will actually use (dense matrix for a
	// bitset/columnar pin, CSR edge array for sparse, whatever the auto
	// heuristic would pick otherwise). Bounding by footprint rather
	// than by a blanket edge cap is what admits sparse million-node
	// specs while still failing infeasible dense ones up front — a
	// graph is only too big when the plan's representation is.
	MaxUnitMemory = int64(4) << 30
	// MaxTrials caps the per-unit trial count.
	MaxTrials = 100000
	// MaxUnits caps the number of units a sweep may expand to.
	MaxUnits = 256
)

// GraphSpec names a graph family and its parameters. Families use the
// subset of fields listed in their familyInfo; Validate rejects any
// family/parameter combination outside it.
type GraphSpec struct {
	// Family is one of Families(): "gnp", "grid", "torus", "complete",
	// "cliques", "path", "cycle", "star", "tree", "unitdisk",
	// "barabasialbert", "wattsstrogatz", "hypercube", "randomregular",
	// "completebinarytree".
	Family string `json:"family"`
	// N is the node count (families parameterised by n).
	N int `json:"n,omitempty"`
	// P is the edge probability (gnp).
	P float64 `json:"p,omitempty"`
	// Rows and Cols shape the grid and torus families.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Radius is the unit-disk connection radius.
	Radius float64 `json:"radius,omitempty"`
	// M is the Barabási–Albert attachment count.
	M int `json:"m,omitempty"`
	// D is the hypercube dimension or the random-regular degree.
	D int `json:"d,omitempty"`
	// K is the Watts–Strogatz base degree (even).
	K int `json:"k,omitempty"`
	// Beta is the Watts–Strogatz rewiring probability.
	Beta float64 `json:"beta,omitempty"`
	// Edges is the sampled edge count of the rmat and configmodel
	// families (self-loops and duplicate samples are dropped, so the
	// instance's edge count is at most this).
	Edges int64 `json:"edges,omitempty"`
	// A, B, C are the rmat quadrant probabilities (the fourth quadrant
	// gets the remainder 1−a−b−c); all-zero means the Graph500 defaults
	// (0.57, 0.19, 0.19, leaving 0.05).
	A float64 `json:"a,omitempty"`
	B float64 `json:"b,omitempty"`
	C float64 `json:"c,omitempty"`
	// Gamma is the configmodel power-law exponent; 0 means 2.5.
	Gamma float64 `json:"gamma,omitempty"`
	// Path locates the graph file of the "file" family, resolved
	// relative to the running process's working directory.
	Path string `json:"path,omitempty"`
	// Format names the file's format ("edgelist", "edgelist-binary",
	// "metis"); empty means inferred from the path's extension.
	Format string `json:"format,omitempty"`
	// Digest is the hex SHA-256 of the graph file's bytes. Compile
	// computes it and folds it into the content hash — the same spec
	// over different file bytes is a different scenario, which is what
	// keeps the misd result cache sound for file-referenced graphs. A
	// spec may pre-set it to pin the expected file content; a mismatch
	// with the actual file is a compile error.
	Digest string `json:"digest,omitempty"`
	// Seed, when non-zero, pins the graph: every trial runs on the same
	// instance generated from this seed. When zero (the default) random
	// families draw a fresh instance per trial from the scenario's
	// per-trial streams — the convention of the paper's experiments.
	Seed uint64 `json:"seed,omitempty"`
}

// FeedbackSpec mirrors mis.FeedbackConfig for the JSON surface; zero
// fields mean the paper defaults (p₀ = 1/2, halve/double, cap 1/2, no
// floor).
type FeedbackSpec struct {
	InitialP float64 `json:"initial_p,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
	MaxP     float64 `json:"max_p,omitempty"`
	MinP     float64 `json:"min_p,omitempty"`
}

// SweepSpec turns one spec into a grid of units: the cross product of
// the listed node counts, edge probabilities and algorithms, each
// defaulting to the base spec's single value when empty. Unit order is
// deterministic: algorithms × n × p, in listed order.
type SweepSpec struct {
	N          []int     `json:"n,omitempty"`
	P          []float64 `json:"p,omitempty"`
	Algorithms []string  `json:"algorithm,omitempty"`
}

// Spec is a declarative scenario: what to simulate, with what
// randomness, and how hard to push the machine while doing it.
//
// Engine, Shards and Workers are performance knobs: every engine,
// shard count and worker count produces bit-identical results (the
// engine-equivalence guarantee plus the trial pool's determinism
// contract), so they are excluded from the canonical form and the
// content hash.
type Spec struct {
	// Name is a free-form label carried into the report; it does not
	// affect results or the content hash.
	Name string `json:"name,omitempty"`
	// Graph names the workload's graph family and parameters.
	Graph GraphSpec `json:"graph"`
	// Algorithm is a beeping algorithm accepted by mis.NewFactories:
	// "feedback", "globalsweep", "afek", or "fixed".
	Algorithm string `json:"algorithm"`
	// Feedback tunes the feedback algorithm (algorithm == "feedback").
	Feedback *FeedbackSpec `json:"feedback,omitempty"`
	// AfekStepsPerLevel overrides the Science'11 schedule's steps per
	// probability level (algorithm == "afek"); 0 means ceil(log2 n).
	AfekStepsPerLevel int `json:"afek_steps_per_level,omitempty"`
	// FixedP is the constant beep probability (algorithm == "fixed");
	// 0 means 1/2.
	FixedP float64 `json:"fixed_p,omitempty"`
	// Engine picks the simulation engine: "auto" (default), "scalar",
	// "bitset", "columnar", or "sparse". Performance-only; excluded
	// from the hash.
	Engine string `json:"engine,omitempty"`
	// Shards bounds the columnar and sparse engines' propagation
	// goroutines. Performance-only; excluded from the hash.
	Shards int `json:"shards,omitempty"`
	// Workers bounds the trial pool; 0 means GOMAXPROCS.
	// Performance-only; excluded from the hash.
	Workers int `json:"workers,omitempty"`
	// Trials is the number of independent runs per unit; 0 means 1.
	Trials int `json:"trials,omitempty"`
	// Seed is the master seed; 0 is normalised to 1 so that "no seed"
	// and "seed": 1 are the same scenario.
	Seed uint64 `json:"seed,omitempty"`
	// MaxRounds caps each run's synchronous rounds; 0 means the
	// simulator default.
	MaxRounds int `json:"max_rounds,omitempty"`
	// BeepLoss is the per-(beeper, listener) beep loss probability of
	// the robustness experiments; non-zero forces the scalar engine.
	BeepLoss float64 `json:"beep_loss,omitempty"`
	// CrashAtRound schedules node crashes: round (1-based) → node ids.
	CrashAtRound map[int][]int `json:"crash_at_round,omitempty"`
	// WakeWindow staggers node wake-up: each node wakes at a round drawn
	// uniformly from [1, WakeWindow] from its trial's wake stream. 0
	// disables wake-up scheduling (all nodes start awake). Mutually
	// exclusive with a wake schedule inside Faults.
	WakeWindow int `json:"wake_window,omitempty"`
	// Faults declares the run's fault model: per-listener channel noise
	// (loss/spurious), adversarial wake-up schedules, and transient
	// outages with resume-or-reset recovery (see internal/fault).
	// Unlike BeepLoss, every fault feature runs on every engine with
	// bit-identical results, so it composes with sparse million-node
	// workloads. Changes results, so it is part of the content hash.
	Faults *fault.Spec `json:"faults,omitempty"`
	// Sweep expands the spec into a grid of units.
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// ParseCompiled decodes, validates and compiles a scenario spec in one
// pass — the submission path's entry point (parsing without compiling
// would just compile twice; every caller needs the units and the hash
// anyway). Unknown fields are errors — a typo in a served workload
// should fail the submission, not silently run the default it happened
// to shadow.
func ParseCompiled(r io.Reader) (*Compiled, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	// A second document in the same stream is almost certainly a
	// concatenation mistake; reject rather than ignore.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse: trailing data after spec document")
	}
	return s.Compile()
}

// ParseCompiledBytes is ParseCompiled over an in-memory document.
func ParseCompiledBytes(b []byte) (*Compiled, error) {
	return ParseCompiled(bytes.NewReader(b))
}

// Parse decodes and validates a scenario spec, returning its
// normalised form. Callers that go on to execute should prefer
// ParseCompiled and keep the Compiled.
func Parse(r io.Reader) (*Spec, error) {
	c, err := ParseCompiled(r)
	if err != nil {
		return nil, err
	}
	return c.Spec, nil
}

// ParseBytes is Parse over an in-memory document.
func ParseBytes(b []byte) (*Spec, error) { return Parse(strings.NewReader(string(b))) }

// Normalized returns a copy of the spec with every default applied:
// seed 0 → 1, trials 0 → 1, engine "" → "auto", feedback/afek/fixed
// parameter defaults materialised for the selected algorithm (and
// cleared for the others), and single-value sweeps folded away. Two
// specs that normalise equal are the same scenario.
func (s *Spec) Normalized() *Spec {
	n := *s
	if n.Seed == 0 {
		n.Seed = 1
	}
	if n.Trials == 0 {
		n.Trials = 1
	}
	if n.Engine == "" {
		n.Engine = "auto"
	}
	// Graph-family defaults are materialised for the same reason the
	// algorithm defaults below are: "rmat with no probabilities" and
	// "rmat with the Graph500 probabilities spelled out" are the same
	// workload and must hash identically.
	switch n.Graph.Family {
	case "rmat":
		if n.Graph.A == 0 && n.Graph.B == 0 && n.Graph.C == 0 {
			n.Graph.A, n.Graph.B, n.Graph.C = 0.57, 0.19, 0.19
		}
	case "configmodel":
		if n.Graph.Gamma == 0 {
			n.Graph.Gamma = 2.5
		}
	case "file":
		if n.Graph.Format == "" && n.Graph.Path != "" {
			n.Graph.Format = graph.DetectGraphFormat(n.Graph.Path)
		}
	}
	// Fold the sweep: a one-point axis is the same scenario as the
	// plain base field (the compiled units and rng streams are
	// identical), so collapse single-value axes into the base and drop
	// an emptied sweep — otherwise equivalent specs would hash apart
	// and split the cache.
	if s.Sweep != nil {
		sw := SweepSpec{
			N:          append([]int(nil), s.Sweep.N...),
			P:          append([]float64(nil), s.Sweep.P...),
			Algorithms: append([]string(nil), s.Sweep.Algorithms...),
		}
		if len(sw.N) == 1 {
			n.Graph.N = sw.N[0]
			sw.N = nil
		}
		if len(sw.P) == 1 {
			n.Graph.P = sw.P[0]
			sw.P = nil
		}
		if len(sw.Algorithms) == 1 {
			n.Algorithm = sw.Algorithms[0]
			sw.Algorithms = nil
		}
		if len(sw.N) == 0 && len(sw.P) == 0 && len(sw.Algorithms) == 0 {
			n.Sweep = nil
		} else {
			n.Sweep = &sw
		}
	}
	// A sweep's algorithm list replaces the base Algorithm entirely, so
	// normalise the base to the list's head — otherwise two specs
	// differing only in an unused base field would split the cache.
	selected := map[string]bool{n.Algorithm: true}
	if n.Sweep != nil && len(n.Sweep.Algorithms) > 0 {
		n.Algorithm = n.Sweep.Algorithms[0]
		selected = make(map[string]bool, len(n.Sweep.Algorithms))
		for _, a := range n.Sweep.Algorithms {
			selected[a] = true
		}
	}
	// Algorithm parameters only exist for their algorithm; drop stray
	// ones so they cannot split the cache. A sweep may run several
	// algorithms, so a parameter survives if any selected algorithm
	// reads it.
	if selected["feedback"] {
		fb := FeedbackSpec{InitialP: 0.5, Factor: 2, MaxP: 0.5}
		if s.Feedback != nil {
			fb = *s.Feedback
			if fb.InitialP == 0 {
				fb.InitialP = 0.5
			}
			if fb.Factor == 0 {
				fb.Factor = 2
			}
			if fb.MaxP == 0 {
				fb.MaxP = 0.5
			}
		}
		n.Feedback = &fb
	} else {
		n.Feedback = nil
	}
	if !selected["afek"] {
		n.AfekStepsPerLevel = 0
	}
	if selected["fixed"] {
		if n.FixedP == 0 {
			n.FixedP = 0.5
		}
	} else {
		n.FixedP = 0
	}
	if s.CrashAtRound != nil {
		// Node lists are sets (ValidateCrashes rejects duplicates), so
		// sort them: order-only permutations of one crash schedule must
		// hash identically.
		n.CrashAtRound = make(map[int][]int, len(s.CrashAtRound))
		//misvet:allow(determinism) keyed copy into a fresh map: each write lands at its own round key, and encoding/json sorts map keys when the canonical form is serialised
		for round, nodes := range s.CrashAtRound {
			sorted := append([]int(nil), nodes...)
			sort.Ints(sorted)
			n.CrashAtRound[round] = sorted
		}
	}
	// Fault specs canonicalise the same way (sorted wake lists and
	// outages); an all-zero faults block folds to nil so "no faults"
	// spelled either way hashes identically.
	n.Faults = s.Faults.Normalized()
	return &n
}

// canonicalSpec is the hash surface: a Spec minus the fields that
// cannot change results. Keep field order stable — it is serialised
// into cache keys.
type canonicalSpec struct {
	Graph             GraphSpec     `json:"graph"`
	Algorithm         string        `json:"algorithm"`
	Feedback          *FeedbackSpec `json:"feedback,omitempty"`
	AfekStepsPerLevel int           `json:"afek_steps_per_level,omitempty"`
	FixedP            float64       `json:"fixed_p,omitempty"`
	Trials            int           `json:"trials"`
	Seed              uint64        `json:"seed"`
	MaxRounds         int           `json:"max_rounds,omitempty"`
	BeepLoss          float64       `json:"beep_loss,omitempty"`
	CrashAtRound      map[int][]int `json:"crash_at_round,omitempty"`
	WakeWindow        int           `json:"wake_window,omitempty"`
	Faults            *fault.Spec   `json:"faults,omitempty"`
	Sweep             *SweepSpec    `json:"sweep,omitempty"`
}

// Canonical returns the spec's canonical serialisation: defaults
// applied, performance knobs (name, engine, shards, workers) stripped,
// fields in declaration order, map keys sorted by encoding/json. Two
// specs with equal Canonical bytes are guaranteed — not just expected —
// to produce byte-identical reports.
func (s *Spec) Canonical() ([]byte, error) {
	n := s.Normalized()
	// A file-family spec's hash covers the file's bytes via the digest
	// Compile resolves. Hashing one without a digest would let two
	// different graphs share a cache key, so the unresolved form has no
	// canonical serialisation — Compile (and everything above it) always
	// hashes the resolved spec.
	if n.Graph.Family == "file" && n.Graph.Digest == "" {
		return nil, fmt.Errorf("scenario: file-family spec has no resolved digest (hash via Compile, which reads the file)")
	}
	c := canonicalSpec{
		Graph:             n.Graph,
		Algorithm:         n.Algorithm,
		Feedback:          n.Feedback,
		AfekStepsPerLevel: n.AfekStepsPerLevel,
		FixedP:            n.FixedP,
		Trials:            n.Trials,
		Seed:              n.Seed,
		MaxRounds:         n.MaxRounds,
		BeepLoss:          n.BeepLoss,
		CrashAtRound:      n.CrashAtRound,
		WakeWindow:        n.WakeWindow,
		Faults:            n.Faults,
		Sweep:             n.Sweep,
	}
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalise: %w", err)
	}
	return b, nil
}

// Hash returns the scenario's content hash: hex SHA-256 of the
// canonical serialisation. It is the service layer's cache key and job
// id.
func (s *Spec) Hash() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	return hashOf(b), nil
}

// hashOf hashes already-canonicalised bytes (Compile holds them, so it
// need not marshal twice).
func hashOf(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// Validate checks the spec without building anything. It is the
// submission-time gate of the service layer: a spec that validates
// compiles, and a compiled spec runs (up to the round cap).
func (s *Spec) Validate() error {
	if _, err := s.Compile(); err != nil {
		return err
	}
	return nil
}

// sortedCrashRounds returns the crash schedule's rounds in ascending
// order (for deterministic error messages and report fields).
func sortedCrashRounds(crashes map[int][]int) []int {
	rounds := make([]int, 0, len(crashes))
	for r := range crashes {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	return rounds
}

// validateEngine mirrors sim.Run's engine/option compatibility rules so
// conflicts fail at submission time.
func validateEngine(engine string, beepLoss float64, shards int) (sim.Engine, error) {
	eng, err := sim.ParseEngine(engine)
	if err != nil {
		return eng, fmt.Errorf("scenario: %w", err)
	}
	if beepLoss > 0 && (eng == sim.EngineBitset || eng == sim.EngineColumnar || eng == sim.EngineSparse) {
		return eng, fmt.Errorf("scenario: engine %q does not support beep_loss (use scalar or auto)", engine)
	}
	if shards != 0 && eng != sim.EngineAuto && eng != sim.EngineColumnar && eng != sim.EngineSparse {
		return eng, fmt.Errorf("scenario: shards %d conflicts with engine %q (only the columnar and sparse engines shard propagation)", shards, engine)
	}
	return eng, nil
}
