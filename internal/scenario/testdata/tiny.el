# tiny fixture: 6-cycle with one chord (0-3)
n 6
0 1
1 2
2 3
3 4
4 5
0 5
0 3
