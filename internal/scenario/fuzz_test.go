package scenario

import (
	"bytes"
	"testing"
)

// FuzzParse asserts the scenario parser's total-validation contract:
// arbitrary bytes either parse into a spec whose Compile also succeeds,
// or return an error — never a panic, and never a spec that validates
// but cannot compile. (Service submissions feed attacker-controlled
// bytes straight into this path.)
func FuzzParse(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback"}`),
		[]byte(`{"graph":{"family":"grid","rows":4,"cols":4},"algorithm":"globalsweep","trials":2}`),
		[]byte(`{"graph":{"family":"hypercube","d":4},"algorithm":"afek","seed":3}`),
		[]byte(`{"graph":{"family":"unitdisk","n":100,"radius":0.2},"algorithm":"feedback","wake_window":8}`),
		[]byte(`{"graph":{"family":"gnp","p":0.5},"algorithm":"feedback","sweep":{"n":[10,20],"algorithm":["feedback","afek"]}}`),
		[]byte(`{"graph":{"family":"gnp","n":20,"p":0.5},"algorithm":"feedback","crash_at_round":{"2":[1,2]}}`),
		[]byte(`{"graph":{"family":"gnp","n":-5,"p":2},"algorithm":"feedback"}`),
		[]byte(`{"graph":{"family":"gnp","n":1e9,"p":0.5},"algorithm":"feedback"}`),
		[]byte(`{"graph":{"family":"banana","n":10},"algorithm":"feedback"}`),
		[]byte(`{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"nope","shards":-3}`),
		[]byte(`{`),
		[]byte(`null`),
		[]byte(`[]`),
		[]byte(`{"graph":null,"algorithm":null}`),
		[]byte(`{"graph":{"family":"randomregular","n":10,"d":3},"algorithm":"fixed","fixed_p":-1}`),
		[]byte(`{"graph":{"family":"gnp","n":20,"p":0.5},"algorithm":"feedback","faults":{"loss":0.05,"spurious":0.01}}`),
		[]byte(`{"graph":{"family":"gnp","n":20,"p":0.5},"algorithm":"feedback","faults":{"wake":{"kind":"uniform","window":8}}}`),
		[]byte(`{"graph":{"family":"gnp","n":20,"p":0.5},"algorithm":"feedback","faults":{"outages":[{"node":3,"from":2,"for":4,"reset":true}]}}`),
		[]byte(`{"graph":{"family":"gnp","n":20,"p":0.5},"algorithm":"feedback","faults":{"loss":-1}}`),
		[]byte(`{"graph":{"family":"gnp","n":20,"p":0.5},"algorithm":"feedback","wake_window":3,"faults":{"wake":{"kind":"degree","window":2}}}`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parse validates via Compile, so a parsed spec must compile,
		// hash, and canonicalise — and do all three deterministically.
		c1, err := spec.Compile()
		if err != nil {
			t.Fatalf("Parse accepted a spec Compile rejects: %v\n%s", err, data)
		}
		c2, err := spec.Compile()
		if err != nil {
			t.Fatalf("second Compile failed: %v", err)
		}
		if c1.Hash != c2.Hash || !bytes.Equal(c1.Canonical, c2.Canonical) {
			t.Fatalf("Compile is not deterministic for %s", data)
		}
		if len(c1.Units) == 0 || len(c1.Units) > MaxUnits {
			t.Fatalf("compiled to %d units", len(c1.Units))
		}
	})
}
