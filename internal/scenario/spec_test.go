package scenario

import (
	"context"
	"strings"
	"testing"
)

func mustParse(t *testing.T, doc string) *Spec {
	t.Helper()
	s, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse(%s): %v", doc, err)
	}
	return s
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"empty", ``, "parse"},
		{"not json", `{]`, "parse"},
		{"unknown field", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","trails":3}`, "trails"},
		{"trailing doc", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback"} {}`, "trailing"},
		{"unknown family", `{"graph":{"family":"smallworld","n":10},"algorithm":"feedback"}`, "unknown graph family"},
		{"unknown algorithm", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"quantum"}`, "unknown algorithm"},
		{"n too large", `{"graph":{"family":"gnp","n":99999999,"p":0.5},"algorithm":"feedback"}`, "outside"},
		{"n zero", `{"graph":{"family":"gnp","n":0,"p":0.5},"algorithm":"feedback"}`, "outside"},
		{"p negative", `{"graph":{"family":"gnp","n":10,"p":-0.5},"algorithm":"feedback"}`, "outside"},
		{"p above one", `{"graph":{"family":"gnp","n":10,"p":1.5},"algorithm":"feedback"}`, "outside"},
		{"too many edges", `{"graph":{"family":"gnp","n":1000000,"p":0.9},"algorithm":"feedback"}`, "edges"},
		{"dense pin infeasible", `{"graph":{"family":"gnp","n":1000000,"p":0.00001},"algorithm":"feedback","engine":"bitset"}`, "dense adjacency matrix"},
		{"negative shards", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","shards":-1}`, "shards"},
		{"shards on scalar", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","engine":"scalar","shards":2}`, "conflicts"},
		{"loss on bitset", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","engine":"bitset","beep_loss":0.1}`, "beep_loss"},
		{"loss on sparse", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","engine":"sparse","beep_loss":0.1}`, "beep_loss"},
		{"loss out of range", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","beep_loss":1}`, "beep_loss"},
		{"trials too large", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","trials":1000001}`, "trials"},
		{"bad engine", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","engine":"warp"}`, "engine"},
		{"columnar without kernel", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"fixed","engine":"columnar"}`, "bulk kernel"},
		{"crash round zero", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","crash_at_round":{"0":[1]}}`, "1-based"},
		{"crash node range", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","crash_at_round":{"2":[10]}}`, "outside"},
		{"crash duplicate", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","crash_at_round":{"2":[3],"4":[3]}}`, "twice"},
		{"negative wake", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","wake_window":-1}`, "wake_window"},
		{"sweep too big", `{"graph":{"family":"gnp","p":0.5},"algorithm":"feedback","sweep":{"n":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30],"p":[0.1,0.2,0.3],"algorithm":["feedback","globalsweep","afek"]}}`, "units"},
		{"sweep p on grid", `{"graph":{"family":"grid","rows":4,"cols":4},"algorithm":"feedback","sweep":{"p":[0.1,0.2]}}`, "not parameterised by p"},
		{"sweep n on hypercube", `{"graph":{"family":"hypercube","d":4},"algorithm":"feedback","sweep":{"n":[16,32]}}`, "not parameterised by n"},
		{"hypercube too deep", `{"graph":{"family":"hypercube","d":40},"algorithm":"feedback"}`, "dimension"},
		{"ba attachment", `{"graph":{"family":"barabasialbert","n":100,"m":0},"algorithm":"feedback"}`, "attachment"},
		{"ws odd k", `{"graph":{"family":"wattsstrogatz","n":100,"k":3,"beta":0.1},"algorithm":"feedback"}`, "even"},
		{"unitdisk radius", `{"graph":{"family":"unitdisk","n":100,"radius":0},"algorithm":"feedback"}`, "radius"},
		{"grid no dims", `{"graph":{"family":"grid"},"algorithm":"feedback"}`, "rows"},
		{"stray radius on gnp", `{"graph":{"family":"gnp","n":10,"p":0.5,"radius":0.3},"algorithm":"feedback"}`, "not used by family"},
		{"stray rows on gnp", `{"graph":{"family":"gnp","n":10,"p":0.5,"rows":7},"algorithm":"feedback"}`, "not used by family"},
		{"stray n on grid", `{"graph":{"family":"grid","rows":3,"cols":3,"n":9},"algorithm":"feedback"}`, "not used by family"},
		{"seed on deterministic family", `{"graph":{"family":"hypercube","d":4,"seed":7},"algorithm":"feedback"}`, "deterministic family"},
		{"regular odd product", `{"graph":{"family":"randomregular","n":5,"d":3},"algorithm":"feedback"}`, "even"},
		{"faults unknown field", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"lossy":0.1}}`, "lossy"},
		{"faults loss range", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"loss":1.5}}`, "loss"},
		{"faults spurious range", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"spurious":-0.1}}`, "spurious"},
		{"faults wake kind", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"wake":{"kind":"sunrise","window":3}}}`, "wake schedule"},
		{"faults wake window", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"wake":{"kind":"uniform"}}}`, "window"},
		{"faults wake node range", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"wake":{"kind":"explicit","at":{"2":[10]}}}}`, "outside"},
		{"faults wake round zero", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"wake":{"kind":"explicit","at":{"0":[1]}}}}`, "1-based"},
		{"faults outage node range", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"outages":[{"node":10,"from":1,"for":2}]}}`, "outside"},
		{"faults outage duration", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"outages":[{"node":3,"from":1,"for":0}]}}`, "duration"},
		{"faults outage overlap", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","faults":{"outages":[{"node":3,"from":1,"for":4},{"node":3,"from":2,"for":1}]}}`, "overlapping"},
		{"faults wake vs wake_window", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","wake_window":4,"faults":{"wake":{"kind":"uniform","window":3}}}`, "pick one"},
		{"faults outage vs crash", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","crash_at_round":{"2":[3]},"faults":{"outages":[{"node":3,"from":4,"for":1}]}}`, "node 3"},
		{"faults sweep node range", `{"graph":{"family":"gnp","p":0.5},"algorithm":"feedback","sweep":{"n":[64,8]},"faults":{"outages":[{"node":20,"from":1,"for":2}]}}`, "outside"},
		{"faults outage past round cap", `{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"feedback","max_rounds":40,"faults":{"outages":[{"node":3,"from":50,"for":5,"reset":true}]}}`, "round cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFaultsInContentHash pins the faults block's hash behaviour: it
// changes results so it must change the hash; listing-order-only
// permutations must not; and an all-zero block must hash like no block
// at all.
func TestFaultsInContentHash(t *testing.T) {
	base := `{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback"}`
	noisy := `{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","faults":{"loss":0.05}}`
	hash := func(doc string) string {
		t.Helper()
		h, err := mustParse(t, doc).Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	if hash(base) == hash(noisy) {
		t.Fatal("faults block did not change the content hash")
	}
	if hash(base) != hash(`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","faults":{}}`) {
		t.Fatal("empty faults block split the cache against no faults block")
	}
	a := `{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","faults":{"outages":[{"node":9,"from":4,"for":1},{"node":2,"from":1,"for":2}],"wake":{"kind":"explicit","at":{"3":[5,1]}}}}`
	b := `{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","faults":{"wake":{"kind":"explicit","at":{"3":[1,5]}},"outages":[{"node":2,"from":1,"for":2},{"node":9,"from":4,"for":1}]}}`
	if hash(a) != hash(b) {
		t.Fatal("listing-order permutation of one fault model hashed apart")
	}
	if hash(a) == hash(noisy) {
		t.Fatal("different fault models hashed together")
	}
}

// TestFaultsScenarioRuns executes a faulted scenario end to end on the
// compiled path and checks the verifier-backed report fields.
func TestFaultsScenarioRuns(t *testing.T) {
	doc := `{
		"graph": {"family": "gnp", "n": 80, "p": 0.2},
		"algorithm": "feedback",
		"trials": 3,
		"seed": 5,
		"faults": {"spurious": 0.05, "wake": {"kind": "degree", "window": 6}}
	}`
	c, err := ParseCompiledBytes([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	report, err := Run(context.Background(), c, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u := report.Units[0]
	if !u.Verified || !u.IndependentEveryRound || !u.MaximalAtTermination {
		t.Fatalf("spurious-only run must verify clean: %+v", u)
	}
	if u.IndependenceViolations != 0 {
		t.Fatalf("violations = %d, want 0", u.IndependenceViolations)
	}
	if u.StableRounds.Max == 0 || u.StableRounds.Max > u.Rounds.Max {
		t.Fatalf("stable rounds %+v implausible against rounds %+v", u.StableRounds, u.Rounds)
	}
	if u.RoundsTail.P50 == 0 || u.RoundsTail.P99 < u.RoundsTail.P50 {
		t.Fatalf("rounds percentiles %+v implausible", u.RoundsTail)
	}
	// The report is a pure function of the spec whatever the engine.
	c2, err := ParseCompiledBytes([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	report2, err := Run(context.Background(), c2, RunOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := report.JSON()
	b2, _ := report2.JSON()
	if string(b1) != string(b2) {
		t.Fatal("faulted report bytes differ across worker counts")
	}
}

func TestHashIgnoresPerformanceKnobs(t *testing.T) {
	base := mustParse(t, `{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":9}`)
	variants := []string{
		`{"name":"labelled","graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":9}`,
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":9,"engine":"columnar"}`,
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":9,"engine":"sparse"}`,
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":9,"shards":4}`,
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":9,"workers":7}`,
		// Explicit defaults hash like omitted ones.
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":9,"engine":"auto","feedback":{"factor":2}}`,
	}
	want, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range variants {
		got, err := mustParse(t, doc).Hash()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("spec %s hashed %s, want %s (performance knobs must not split the cache)", doc, got, want)
		}
	}

	// Semantic changes must change the hash.
	different := []string{
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":10}`,
		`{"graph":{"family":"gnp","n":51,"p":0.5},"algorithm":"feedback","trials":3,"seed":9}`,
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"globalsweep","trials":3,"seed":9}`,
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":4,"seed":9}`,
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":9,"feedback":{"factor":3}}`,
		`{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":3,"seed":9,"wake_window":8}`,
	}
	for _, doc := range different {
		got, err := mustParse(t, doc).Hash()
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			t.Errorf("spec %s hashed like the base spec; semantic fields must split the cache", doc)
		}
	}
}

// TestEqualHashMeansEqualBytes is the cache-soundness contract at its
// sharpest: specs that hash equal but differ in non-semantic fields
// (the free-form name, perf knobs, crash-list order, an unused base
// algorithm under a sweep) must produce byte-identical reports.
func TestEqualHashMeansEqualBytes(t *testing.T) {
	pairs := [][2]string{
		{
			`{"name":"alice","graph":{"family":"gnp","n":40,"p":0.5},"algorithm":"feedback","trials":2,"seed":4}`,
			`{"name":"bob","graph":{"family":"gnp","n":40,"p":0.5},"algorithm":"feedback","trials":2,"seed":4,"engine":"scalar","workers":3}`,
		},
		{
			`{"graph":{"family":"gnp","n":30,"p":0.5},"algorithm":"feedback","trials":2,"crash_at_round":{"3":[1,2,5]}}`,
			`{"graph":{"family":"gnp","n":30,"p":0.5},"algorithm":"feedback","trials":2,"crash_at_round":{"3":[5,2,1]}}`,
		},
		{
			`{"graph":{"family":"gnp","n":30,"p":0.5},"algorithm":"feedback","trials":2,"sweep":{"algorithm":["globalsweep"]}}`,
			`{"graph":{"family":"gnp","n":30,"p":0.5},"algorithm":"globalsweep","trials":2,"sweep":{"algorithm":["globalsweep"]}}`,
		},
		// A one-point sweep axis folds into the plain base field.
		{
			`{"graph":{"family":"gnp","p":0.5},"algorithm":"feedback","trials":2,"sweep":{"n":[30]}}`,
			`{"graph":{"family":"gnp","n":30,"p":0.5},"algorithm":"feedback","trials":2}`,
		},
	}
	for _, pair := range pairs {
		var hashes [2]string
		var bodies [2]string
		for i, doc := range pair {
			c, err := mustParse(t, doc).Compile()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(context.Background(), c, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			hashes[i], bodies[i] = c.Hash, string(b)
		}
		if hashes[0] != hashes[1] {
			t.Errorf("pair %v hashed %s vs %s, want equal", pair, hashes[0], hashes[1])
		}
		if bodies[0] != bodies[1] {
			t.Errorf("pair %v produced different report bytes despite equal hashes", pair)
		}
	}
}

// TestMillionNodeBounds is the sparse-admission contract: a million-node
// spec validates exactly when the representation its plan will use fits
// in memory. The same graph that sails through under "auto" (planned
// sparse, a few dozen MB of CSR) or "sparse" must fail up front under a
// dense-matrix pin (125 GB) — with the reason spelled out — and the
// engine choice must not move the content hash.
func TestMillionNodeBounds(t *testing.T) {
	const graphDoc = `"graph":{"family":"gnp","n":1000000,"p":0.00001}`
	auto := mustParse(t, `{`+graphDoc+`,"algorithm":"feedback"}`)
	c, err := auto.Compile()
	if err != nil {
		t.Fatalf("million-node sparse spec rejected: %v", err)
	}
	if got := c.Units[0].PlannedEngine; got.String() != "sparse" {
		t.Fatalf("planned engine %v, want sparse", got)
	}
	for _, pin := range []string{"sparse", "scalar"} {
		if err := mustParse(t, `{`+graphDoc+`,"algorithm":"feedback","engine":"`+pin+`"}`).Validate(); err != nil {
			t.Fatalf("million-node spec with engine %q rejected: %v", pin, err)
		}
	}
	for _, pin := range []string{"bitset", "columnar"} {
		_, err := Parse(strings.NewReader(`{` + graphDoc + `,"algorithm":"feedback","engine":"` + pin + `"}`))
		if err == nil {
			t.Fatalf("infeasible dense pin %q accepted", pin)
		}
		for _, want := range []string{"dense adjacency matrix", "sparse"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("dense-pin error %q does not mention %q", err, want)
			}
		}
	}
	// Engine and bounds are performance knobs: every admitted variant of
	// the same workload must share one content hash.
	want, err := auto.Hash()
	if err != nil {
		t.Fatal(err)
	}
	for _, pin := range []string{"sparse", "scalar"} {
		got, err := mustParse(t, `{`+graphDoc+`,"algorithm":"feedback","engine":"`+pin+`"}`).Hash()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("engine %q moved the content hash: %s vs %s", pin, got, want)
		}
	}
}

func TestSweepStillValidatesBaseAlgorithm(t *testing.T) {
	_, err := Parse(strings.NewReader(
		`{"graph":{"family":"gnp","n":30,"p":0.5},"algorithm":"bogus","sweep":{"algorithm":["feedback"]}}`))
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("typo'd base algorithm under a sweep: err=%v, want unknown-algorithm", err)
	}
	// An omitted base is fine when the sweep supplies the algorithms.
	if _, err := Parse(strings.NewReader(
		`{"graph":{"family":"gnp","n":30,"p":0.5},"sweep":{"algorithm":["feedback"]}}`)); err != nil {
		t.Fatalf("sweep-only algorithms rejected: %v", err)
	}
}

func TestSeedZeroNormalisesToOne(t *testing.T) {
	a := mustParse(t, `{"graph":{"family":"gnp","n":30,"p":0.5},"algorithm":"feedback"}`)
	b := mustParse(t, `{"graph":{"family":"gnp","n":30,"p":0.5},"algorithm":"feedback","seed":1,"trials":1}`)
	ha, _ := a.Hash()
	hb, _ := b.Hash()
	if ha != hb {
		t.Fatalf("unseeded spec hashed %s, explicit seed-1 spec %s; defaults must normalise", ha, hb)
	}
}

func TestCompileExpandsSweepDeterministically(t *testing.T) {
	s := mustParse(t, `{"graph":{"family":"gnp","p":0.5},"algorithm":"feedback",
		"sweep":{"n":[20,40],"p":[0.2,0.8],"algorithm":["globalsweep","feedback"]}}`)
	c, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Units) != 8 {
		t.Fatalf("got %d units, want 8", len(c.Units))
	}
	// Order: algorithms × n × p, as documented.
	wantAlgo := []string{"globalsweep", "globalsweep", "globalsweep", "globalsweep", "feedback", "feedback", "feedback", "feedback"}
	wantN := []int{20, 20, 40, 40, 20, 20, 40, 40}
	wantP := []float64{0.2, 0.8, 0.2, 0.8, 0.2, 0.8, 0.2, 0.8}
	for i, u := range c.Units {
		if u.Index != i || u.Algorithm != wantAlgo[i] || u.N != wantN[i] || u.P != wantP[i] {
			t.Errorf("unit %d = (%s, n=%d, p=%v), want (%s, n=%d, p=%v)",
				i, u.Algorithm, u.N, u.P, wantAlgo[i], wantN[i], wantP[i])
		}
	}
}

func TestRunDeterministicAcrossWorkersAndEngines(t *testing.T) {
	doc := `{"graph":{"family":"gnp","n":80,"p":0.3},"algorithm":"feedback","trials":6,"seed":5}`
	var want []byte
	for _, variant := range []string{
		doc,
		`{"graph":{"family":"gnp","n":80,"p":0.3},"algorithm":"feedback","trials":6,"seed":5,"workers":4}`,
		`{"graph":{"family":"gnp","n":80,"p":0.3},"algorithm":"feedback","trials":6,"seed":5,"engine":"scalar"}`,
		`{"graph":{"family":"gnp","n":80,"p":0.3},"algorithm":"feedback","trials":6,"seed":5,"engine":"columnar","shards":3}`,
		`{"graph":{"family":"gnp","n":80,"p":0.3},"algorithm":"feedback","trials":6,"seed":5,"engine":"sparse","shards":3}`,
		`{"graph":{"family":"gnp","n":80,"p":0.3},"algorithm":"feedback","trials":6,"seed":5,"engine":"sparse","workers":2}`,
	} {
		c, err := mustParse(t, variant).Compile()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), c, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
			continue
		}
		if string(b) != string(want) {
			t.Fatalf("variant %s produced different report bytes; engines/workers/shards must not affect results", variant)
		}
	}
}

func TestRunPinnedGraphSeed(t *testing.T) {
	// A pinned graph seed runs every trial on one instance: edge count
	// has zero variance across trials, unlike the per-trial default.
	pinned := mustParse(t, `{"graph":{"family":"gnp","n":60,"p":0.4,"seed":3},"algorithm":"feedback","trials":4}`)
	c, err := pinned.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), c, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u := rep.Units[0]
	if u.Edges != float64(int(u.Edges)) {
		t.Fatalf("pinned-seed unit has fractional mean edge count %v; trials must share one instance", u.Edges)
	}
	if !u.Verified {
		t.Fatal("pinned-seed unit failed MIS verification")
	}
}

func TestRunEmitsProgressEvents(t *testing.T) {
	c, err := mustParse(t, `{"graph":{"family":"gnp","n":40,"p":0.5},"algorithm":"feedback","trials":1,"seed":2}`).Compile()
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	_, err = Run(context.Background(), c, RunOptions{Progress: func(e Event) { events = append(events, e) }})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventType]int{}
	for _, e := range events {
		counts[e.Type]++
	}
	if counts[EventUnitStart] != 1 || counts[EventUnitDone] != 1 || counts[EventTrial] != 1 {
		t.Fatalf("event counts %v, want one unit_start/unit_done/trial", counts)
	}
	if counts[EventRound] == 0 {
		t.Fatal("single-trial run emitted no round events")
	}
}

func TestRunHonoursCancellation(t *testing.T) {
	c, err := mustParse(t, `{"graph":{"family":"gnp","n":50,"p":0.5},"algorithm":"feedback","trials":500,"workers":1}`).Compile()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	trials := 0
	_, err = Run(ctx, c, RunOptions{Progress: func(e Event) {
		if e.Type == EventTrial {
			trials++
			if trials == 3 {
				cancel()
			}
		}
	}})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if trials >= 500 {
		t.Fatal("cancellation did not stop the trial loop")
	}
}

func TestCrashAndWakeSchedulesApply(t *testing.T) {
	// Fault schedules draw from their own rng streams, so a crash+wake
	// scenario must stay bit-deterministic across worker counts like
	// any other. (Verification may legitimately fail here — crashed
	// nodes leave perceived-maximality holes — so the assertion is on
	// determinism, not on Verified.)
	doc := `{"graph":{"family":"gnp","n":40,"p":0.4,"seed":8},"algorithm":"feedback","trials":2,"seed":8,
		"crash_at_round":{"2":[0,1,2]},"wake_window":4}`
	c, err := mustParse(t, doc).Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), c, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), c, RunOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := a.JSON()
	bb, _ := b.JSON()
	if string(ab) != string(bb) {
		t.Fatal("crash+wake scenario not deterministic across worker counts")
	}
}

func TestFamiliesAllBuildable(t *testing.T) {
	docs := map[string]string{
		"gnp":                `{"graph":{"family":"gnp","n":30,"p":0.3},"algorithm":"feedback"}`,
		"complete":           `{"graph":{"family":"complete","n":20},"algorithm":"feedback"}`,
		"cliques":            `{"graph":{"family":"cliques","n":200},"algorithm":"feedback"}`,
		"grid":               `{"graph":{"family":"grid","rows":5,"cols":6},"algorithm":"feedback"}`,
		"torus":              `{"graph":{"family":"torus","rows":4,"cols":4},"algorithm":"feedback"}`,
		"path":               `{"graph":{"family":"path","n":25},"algorithm":"feedback"}`,
		"cycle":              `{"graph":{"family":"cycle","n":25},"algorithm":"feedback"}`,
		"star":               `{"graph":{"family":"star","n":25},"algorithm":"feedback"}`,
		"tree":               `{"graph":{"family":"tree","n":25},"algorithm":"feedback"}`,
		"completebinarytree": `{"graph":{"family":"completebinarytree","n":31},"algorithm":"feedback"}`,
		"unitdisk":           `{"graph":{"family":"unitdisk","n":60,"radius":0.25},"algorithm":"feedback"}`,
		"barabasialbert":     `{"graph":{"family":"barabasialbert","n":50,"m":3},"algorithm":"feedback"}`,
		"wattsstrogatz":      `{"graph":{"family":"wattsstrogatz","n":40,"k":4,"beta":0.2},"algorithm":"feedback"}`,
		"hypercube":          `{"graph":{"family":"hypercube","d":5},"algorithm":"feedback"}`,
		"randomregular":      `{"graph":{"family":"randomregular","n":30,"d":4},"algorithm":"feedback"}`,
		"rmat":               `{"graph":{"family":"rmat","n":64,"edges":256},"algorithm":"feedback"}`,
		"configmodel":        `{"graph":{"family":"configmodel","n":50,"edges":150},"algorithm":"feedback"}`,
		"file":               `{"graph":{"family":"file","path":"testdata/tiny.el"},"algorithm":"feedback"}`,
	}
	if len(docs) != len(Families()) {
		t.Fatalf("test covers %d families, registry has %d (%v)", len(docs), len(Families()), Families())
	}
	for family, doc := range docs {
		t.Run(family, func(t *testing.T) {
			c, err := mustParse(t, doc).Compile()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(context.Background(), c, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Units[0].Verified {
				t.Fatalf("family %s produced an unverified MIS", family)
			}
		})
	}
}
