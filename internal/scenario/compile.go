package scenario

import (
	"fmt"
	"math"
	"sort"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

// familyInfo describes one graph family: which GraphSpec fields it
// reads, whether it is randomised, and how to build an instance. build
// receives the unit's effective n and p (post-sweep) and a source that
// is nil exactly when random is false.
type familyInfo struct {
	// usesN/usesP report whether the family is parameterised by the
	// swept coordinates; sweeping a coordinate the family ignores is a
	// spec error, not a silent no-op.
	usesN, usesP bool
	// random families consume a generation seed.
	random bool
	// extra lists the family-specific GraphSpec fields beyond
	// n/p/seed (which usesN/usesP/random govern). A set field outside
	// the family's parameter set is rejected: it would be silently
	// ignored by the builder yet serialised into the content hash,
	// splitting the cache between identical workloads.
	extra []string
	// expectedEdges estimates the instance's edge count for the
	// memory-footprint admission bound (an overestimate is fine).
	expectedEdges func(g GraphSpec, n int, p float64) float64
	// nodes returns the instance's node count for bounds checking.
	nodes func(g GraphSpec, n int) int
	// validate checks family-specific parameters (n/p range checks are
	// shared and happen first).
	validate func(g GraphSpec, n int, p float64) error
	build    func(g GraphSpec, n int, p float64, src *rng.Source) (*graph.Graph, error)
}

func nSquaredEdges(g GraphSpec, n int, p float64) float64 {
	return p * float64(n) * float64(n-1) / 2
}

// cliqueK mirrors graph.CliqueFamily's size parameter.
func cliqueK(n int) int {
	k := int(math.Cbrt(float64(n)))
	if k < 1 {
		k = 1
	}
	return k
}
func linearEdges(g GraphSpec, n int, _ float64) float64 { return float64(2 * n) }
func identityNodes(_ GraphSpec, n int) int              { return n }
func noValidate(GraphSpec, int, float64) error          { return nil }

// families is the graph-family registry. Read-only after package init.
var families = map[string]familyInfo{
	"gnp": {
		usesN: true, usesP: true, random: true,
		expectedEdges: nSquaredEdges,
		nodes:         identityNodes,
		validate:      noValidate,
		build: func(_ GraphSpec, n int, p float64, src *rng.Source) (*graph.Graph, error) {
			return graph.GNP(n, p, src), nil
		},
	},
	"complete": {
		usesN: true,
		expectedEdges: func(_ GraphSpec, n int, _ float64) float64 {
			return float64(n) * float64(n-1) / 2
		},
		nodes:    identityNodes,
		validate: noValidate,
		build: func(_ GraphSpec, n int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			return graph.Complete(n), nil
		},
	},
	"cliques": {
		usesN: true,
		// k = ⌊n^(1/3)⌋ disjoint copies of K_d for each d = 1..k:
		// k·k(k+1)/2 = Θ(n) vertices, k·(k³-k)/6 ≈ n^(4/3)/6 edges.
		expectedEdges: func(_ GraphSpec, n int, _ float64) float64 {
			k := cliqueK(n)
			return float64(k) * float64(k*k*k-k) / 6
		},
		nodes: func(_ GraphSpec, n int) int {
			k := cliqueK(n)
			return k * k * (k + 1) / 2
		},
		validate: noValidate,
		build: func(_ GraphSpec, n int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			return graph.CliqueFamily(n), nil
		},
	},
	"grid": {
		extra:         []string{"rows", "cols"},
		expectedEdges: func(g GraphSpec, _ int, _ float64) float64 { return 2 * float64(g.Rows) * float64(g.Cols) },
		nodes:         func(g GraphSpec, _ int) int { return g.Rows * g.Cols },
		validate: func(g GraphSpec, _ int, _ float64) error {
			if g.Rows <= 0 || g.Cols <= 0 {
				return fmt.Errorf("scenario: grid needs positive rows and cols (got %d×%d)", g.Rows, g.Cols)
			}
			return nil
		},
		build: func(g GraphSpec, _ int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			return graph.Grid(g.Rows, g.Cols), nil
		},
	},
	"torus": {
		extra:         []string{"rows", "cols"},
		expectedEdges: func(g GraphSpec, _ int, _ float64) float64 { return 2 * float64(g.Rows) * float64(g.Cols) },
		nodes:         func(g GraphSpec, _ int) int { return g.Rows * g.Cols },
		validate: func(g GraphSpec, _ int, _ float64) error {
			if g.Rows <= 0 || g.Cols <= 0 {
				return fmt.Errorf("scenario: torus needs positive rows and cols (got %d×%d)", g.Rows, g.Cols)
			}
			return nil
		},
		build: func(g GraphSpec, _ int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			return graph.Torus(g.Rows, g.Cols), nil
		},
	},
	"path": {
		usesN: true, expectedEdges: linearEdges, nodes: identityNodes, validate: noValidate,
		build: func(_ GraphSpec, n int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			return graph.Path(n), nil
		},
	},
	"cycle": {
		usesN: true, expectedEdges: linearEdges, nodes: identityNodes,
		validate: func(_ GraphSpec, n int, _ float64) error {
			if n < 3 {
				return fmt.Errorf("scenario: cycle needs n ≥ 3 (got %d)", n)
			}
			return nil
		},
		build: func(_ GraphSpec, n int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			return graph.Cycle(n), nil
		},
	},
	"star": {
		usesN: true, expectedEdges: linearEdges, nodes: identityNodes, validate: noValidate,
		build: func(_ GraphSpec, n int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			return graph.Star(n), nil
		},
	},
	"tree": {
		usesN: true, random: true, expectedEdges: linearEdges, nodes: identityNodes, validate: noValidate,
		build: func(_ GraphSpec, n int, _ float64, src *rng.Source) (*graph.Graph, error) {
			return graph.RandomTree(n, src), nil
		},
	},
	"completebinarytree": {
		usesN: true, expectedEdges: linearEdges, nodes: identityNodes, validate: noValidate,
		build: func(_ GraphSpec, n int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			return graph.CompleteBinaryTree(n), nil
		},
	},
	"unitdisk": {
		usesN: true, random: true, extra: []string{"radius"},
		expectedEdges: func(g GraphSpec, n int, _ float64) float64 {
			// Pair connection probability ≈ area of the radius disk
			// clipped to the unit square; πr² is an adequate bound.
			return math.Pi * g.Radius * g.Radius * float64(n) * float64(n-1) / 2
		},
		nodes: identityNodes,
		validate: func(g GraphSpec, _ int, _ float64) error {
			if g.Radius <= 0 || g.Radius > math.Sqrt2 {
				return fmt.Errorf("scenario: unitdisk radius %v outside (0, √2]", g.Radius)
			}
			return nil
		},
		build: func(g GraphSpec, n int, _ float64, src *rng.Source) (*graph.Graph, error) {
			return graph.UnitDisk(n, g.Radius, src), nil
		},
	},
	"barabasialbert": {
		usesN: true, random: true, extra: []string{"m"},
		expectedEdges: func(g GraphSpec, n int, _ float64) float64 { return float64(g.M) * float64(n) },
		nodes:         identityNodes,
		validate: func(g GraphSpec, n int, _ float64) error {
			if g.M <= 0 || g.M >= n {
				return fmt.Errorf("scenario: barabasialbert attachment m=%d outside (0, n=%d)", g.M, n)
			}
			return nil
		},
		build: func(g GraphSpec, n int, _ float64, src *rng.Source) (*graph.Graph, error) {
			return graph.BarabasiAlbert(n, g.M, src)
		},
	},
	"wattsstrogatz": {
		usesN: true, random: true, extra: []string{"k", "beta"},
		expectedEdges: func(g GraphSpec, n int, _ float64) float64 { return float64(g.K) * float64(n) / 2 },
		nodes:         identityNodes,
		validate: func(g GraphSpec, n int, _ float64) error {
			if g.K <= 0 || g.K%2 != 0 || g.K >= n {
				return fmt.Errorf("scenario: wattsstrogatz base degree k=%d must be even and in (0, n=%d)", g.K, n)
			}
			if g.Beta < 0 || g.Beta > 1 {
				return fmt.Errorf("scenario: wattsstrogatz beta %v outside [0,1]", g.Beta)
			}
			return nil
		},
		build: func(g GraphSpec, n int, _ float64, src *rng.Source) (*graph.Graph, error) {
			return graph.WattsStrogatz(n, g.K, g.Beta, src)
		},
	},
	"hypercube": {
		extra: []string{"d"},
		expectedEdges: func(g GraphSpec, _ int, _ float64) float64 {
			return float64(g.D) * math.Exp2(float64(g.D)) / 2
		},
		nodes: func(g GraphSpec, _ int) int {
			if g.D < 0 || g.D > 20 {
				return MaxNodes + 1 // out of range; validate reports the real error
			}
			return 1 << g.D
		},
		validate: func(g GraphSpec, _ int, _ float64) error {
			if g.D <= 0 || g.D > 20 {
				return fmt.Errorf("scenario: hypercube dimension d=%d outside [1, 20]", g.D)
			}
			return nil
		},
		build: func(g GraphSpec, _ int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			return graph.Hypercube(g.D)
		},
	},
	"randomregular": {
		usesN: true, random: true, extra: []string{"d"},
		expectedEdges: func(g GraphSpec, n int, _ float64) float64 { return float64(g.D) * float64(n) / 2 },
		nodes:         identityNodes,
		validate: func(g GraphSpec, n int, _ float64) error {
			if g.D <= 0 || g.D >= n || (g.D*n)%2 != 0 {
				return fmt.Errorf("scenario: randomregular degree d=%d invalid for n=%d (need 0 < d < n, d·n even)", g.D, n)
			}
			return nil
		},
		build: func(g GraphSpec, n int, _ float64, src *rng.Source) (*graph.Graph, error) {
			return graph.RandomRegular(n, g.D, src)
		},
	},
	// The three direct-to-CSR families. Their builders return a
	// graph.FromCSR view — adjacency slice headers aliasing the CSR's
	// column array — so the sparse engine gets the CSR with no copy and
	// the verifier gets its neighbour walks from the same storage.
	"rmat": {
		usesN: true, random: true, extra: []string{"edges", "a", "b", "c"},
		expectedEdges: func(g GraphSpec, _ int, _ float64) float64 { return float64(g.Edges) },
		nodes:         identityNodes,
		validate: func(g GraphSpec, n int, _ float64) error {
			if n < 2 || n&(n-1) != 0 {
				return fmt.Errorf("scenario: rmat needs n a power of two ≥ 2 (got %d)", n)
			}
			if g.Edges < 1 {
				return fmt.Errorf("scenario: rmat needs edges ≥ 1 (got %d)", g.Edges)
			}
			if err := graph.ValidateRMATProbs(g.A, g.B, g.C, 1-g.A-g.B-g.C); err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
			return nil
		},
		build: func(g GraphSpec, n int, _ float64, src *rng.Source) (*graph.Graph, error) {
			c, err := graph.RMATCSR(n, g.Edges, g.A, g.B, g.C, 1-g.A-g.B-g.C, src, 0)
			if err != nil {
				return nil, err
			}
			return graph.FromCSR(c), nil
		},
	},
	"configmodel": {
		usesN: true, random: true, extra: []string{"edges", "gamma"},
		expectedEdges: func(g GraphSpec, _ int, _ float64) float64 { return float64(g.Edges) },
		nodes:         identityNodes,
		validate: func(g GraphSpec, _ int, _ float64) error {
			if g.Edges < 1 {
				return fmt.Errorf("scenario: configmodel needs edges ≥ 1 (got %d)", g.Edges)
			}
			if math.IsNaN(g.Gamma) || g.Gamma <= 2 {
				return fmt.Errorf("scenario: configmodel exponent gamma=%v must exceed 2 (finite mean degree)", g.Gamma)
			}
			return nil
		},
		build: func(g GraphSpec, n int, _ float64, src *rng.Source) (*graph.Graph, error) {
			c, err := graph.ConfigModelCSR(n, g.Edges, g.Gamma, src, 0)
			if err != nil {
				return nil, err
			}
			return graph.FromCSR(c), nil
		},
	},
	// file loads a graph from disk through the streaming loaders — never
	// an intermediate adjacency Graph. It is deterministic (not random:
	// the file's bytes are pinned by the digest Compile resolves), so the
	// runner builds it once per unit and shares it across trials.
	"file": {
		extra: []string{"path", "format", "digest"},
		expectedEdges: func(g GraphSpec, _ int, _ float64) float64 {
			info, err := graph.PeekGraphFile(g.Path, g.Format)
			if err != nil {
				return float64(MaxUnitMemory) // validate reports the real error
			}
			return float64(info.Edges)
		},
		nodes: func(g GraphSpec, _ int) int {
			info, err := graph.PeekGraphFile(g.Path, g.Format)
			if err != nil {
				return MaxNodes + 1 // out of range; validate reports the real error
			}
			return info.N
		},
		validate: func(g GraphSpec, _ int, _ float64) error {
			if g.Path == "" {
				return fmt.Errorf("scenario: file family needs a graph path")
			}
			if _, err := graph.PeekGraphFile(g.Path, g.Format); err != nil {
				return fmt.Errorf("scenario: %w", err)
			}
			return nil
		},
		build: func(g GraphSpec, _ int, _ float64, _ *rng.Source) (*graph.Graph, error) {
			c, digest, err := graph.LoadCSRFile(g.Path, g.Format, 0)
			if err != nil {
				return nil, err
			}
			// The compiled plan's hash covers g.Digest; a different file
			// on disk at run time would silently poison the result cache.
			if digest != g.Digest {
				return nil, fmt.Errorf("graph file %s has digest %s, but the compiled scenario expects %s (file changed since submission?)", g.Path, digest, g.Digest)
			}
			return graph.FromCSR(c), nil
		},
	},
}

// Families returns the supported graph family names, sorted.
func Families() []string {
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Unit is one compiled workload of a scenario: a single (graph,
// algorithm, parameters) point, executed for the spec's trial count.
type Unit struct {
	// Index is the unit's position in the sweep expansion order.
	Index int
	// Algorithm is the resolved algorithm name.
	Algorithm string
	// N and P are the unit's effective graph parameters (N is the
	// requested coordinate, not necessarily the instance's node count —
	// see familyInfo.nodes).
	N int
	P float64
	// Nodes is the instance node count implied by the family and N.
	Nodes int
	// PlannedEngine is the engine the compiled plan expects sim.Run to
	// execute for this unit: the spec's pin, or — for "auto" — the
	// heuristic's estimated choice from the expected node and edge
	// counts. The admission bound budgets this representation's memory;
	// it is an estimate (random instances vary), never a semantic knob.
	PlannedEngine sim.Engine

	graph   GraphSpec
	info    familyInfo
	factory beep.Factory
	bulk    beep.BulkFactory
	spec    *Spec // the owning compiled (normalised) spec
}

// Compiled is a validated, executable scenario: the normalised spec,
// its content hash, and the expanded unit list.
type Compiled struct {
	// Spec is the normalised spec (defaults applied).
	Spec *Spec
	// Canonical is the canonical serialisation (the hash preimage).
	Canonical []byte
	// Hash is the content hash — the service cache key.
	Hash string
	// Units are the expanded workloads in deterministic order.
	Units []*Unit

	// engine is the resolved engine pin, validated once here so the
	// runner need not re-derive it per unit.
	engine sim.Engine
}

// graphFieldChecks pairs every family-specific GraphSpec field with its
// set-ness; used to reject fields the selected family ignores (they
// would silently change nothing yet split the content hash).
func graphFieldChecks(g GraphSpec) map[string]bool {
	return map[string]bool{
		"rows":   g.Rows != 0,
		"cols":   g.Cols != 0,
		"radius": g.Radius != 0,
		"m":      g.M != 0,
		"d":      g.D != 0,
		"k":      g.K != 0,
		"beta":   g.Beta != 0,
		"edges":  g.Edges != 0,
		"a":      g.A != 0,
		"b":      g.B != 0,
		"c":      g.C != 0,
		"gamma":  g.Gamma != 0,
		"path":   g.Path != "",
		"format": g.Format != "",
		"digest": g.Digest != "",
	}
}

// Compile validates the spec and expands its sweep into units. It
// builds no graphs and runs nothing; a non-nil error describes the
// first problem found, phrased for the submitting user.
func (s *Spec) Compile() (*Compiled, error) {
	n := s.Normalized()

	if n.Trials < 1 || n.Trials > MaxTrials {
		return nil, fmt.Errorf("scenario: trials %d outside [1, %d]", n.Trials, MaxTrials)
	}
	if n.Workers < 0 {
		return nil, fmt.Errorf("scenario: workers %d negative (0 = all cores)", n.Workers)
	}
	if n.Shards < 0 {
		return nil, fmt.Errorf("scenario: shards %d negative (0 = all cores, 1 = serial)", n.Shards)
	}
	if n.MaxRounds < 0 {
		return nil, fmt.Errorf("scenario: max_rounds %d negative (0 = simulator default)", n.MaxRounds)
	}
	if n.BeepLoss < 0 || n.BeepLoss >= 1 {
		return nil, fmt.Errorf("scenario: beep_loss %v outside [0, 1)", n.BeepLoss)
	}
	if n.WakeWindow < 0 {
		return nil, fmt.Errorf("scenario: wake_window %d negative (0 = all nodes start awake)", n.WakeWindow)
	}
	if n.Faults != nil && n.Faults.Wake != nil && n.WakeWindow > 0 {
		return nil, fmt.Errorf("scenario: wake_window %d conflicts with the faults block's wake schedule (pick one)", n.WakeWindow)
	}
	// Outages must fit the round budget: a recovery past the cap would
	// be silently truncated, which is exactly the skipped-perturbation
	// failure mode the fault layer exists to rule out.
	maxRounds := n.MaxRounds
	if maxRounds <= 0 {
		maxRounds = sim.DefaultMaxRounds
	}
	if err := n.Faults.ValidateAgainstRounds(maxRounds); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	engine, err := validateEngine(n.Engine, n.BeepLoss, n.Shards)
	if err != nil {
		return nil, err
	}

	info, ok := families[n.Graph.Family]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown graph family %q (have %v)", n.Graph.Family, Families())
	}

	// Reject graph fields the family does not read: a stray "radius"
	// on a gnp spec would be ignored by the builder but serialised
	// into the hash, making identical workloads miss each other's
	// cache entries.
	allowed := map[string]bool{}
	for _, f := range info.extra {
		allowed[f] = true
	}
	// Visit the fields in sorted order so a spec with two stray fields
	// always reports the same one first.
	checks := graphFieldChecks(n.Graph)
	fields := make([]string, 0, len(checks))
	for field := range checks {
		fields = append(fields, field)
	}
	sort.Strings(fields)
	for _, field := range fields {
		if checks[field] && !allowed[field] {
			return nil, fmt.Errorf("scenario: graph field %q is not used by family %q", field, n.Graph.Family)
		}
	}
	if n.Graph.N != 0 && !info.usesN {
		return nil, fmt.Errorf("scenario: graph field \"n\" is not used by family %q", n.Graph.Family)
	}
	if n.Graph.P != 0 && !info.usesP {
		return nil, fmt.Errorf("scenario: graph field \"p\" is not used by family %q", n.Graph.Family)
	}
	if n.Graph.Seed != 0 && !info.random {
		return nil, fmt.Errorf("scenario: graph field \"seed\" is not used by deterministic family %q", n.Graph.Family)
	}

	// A file-family scenario's results are a function of the file's
	// bytes, so its content hash must be too: resolve the SHA-256 digest
	// now, before the units capture the GraphSpec and before the
	// canonical form below is serialised. A spec that pre-sets the
	// digest is pinning the content it was written against — a mismatch
	// means the file on disk is not that graph.
	if n.Graph.Family == "file" {
		if n.Graph.Path == "" {
			return nil, fmt.Errorf("scenario: file family needs a graph path")
		}
		digest, err := graph.HashGraphFile(n.Graph.Path)
		if err != nil {
			return nil, fmt.Errorf("scenario: hashing graph file: %w", err)
		}
		if n.Graph.Digest != "" && n.Graph.Digest != digest {
			return nil, fmt.Errorf("scenario: graph file %s has digest %s, but the spec pins %s (file changed since the spec was written?)", n.Graph.Path, digest, n.Graph.Digest)
		}
		n.Graph.Digest = digest
	}

	// The base algorithm is validated even when a sweep's list replaces
	// it (normalisation folds it to the list's head for hashing): a
	// typo should fail the submission, not ride along unnoticed. An
	// empty base is allowed iff the sweep supplies the algorithms.
	if s.Algorithm != "" {
		known := false
		for _, name := range mis.Names() {
			known = known || name == s.Algorithm
		}
		if !known {
			return nil, fmt.Errorf("scenario: unknown algorithm %q (have %v)", s.Algorithm, mis.Names())
		}
	} else if s.Sweep == nil || len(s.Sweep.Algorithms) == 0 {
		return nil, fmt.Errorf("scenario: missing algorithm (have %v)", mis.Names())
	}

	// Sweep axes default to the base spec's single value.
	ns := []int{n.Graph.N}
	ps := []float64{n.Graph.P}
	algos := []string{n.Algorithm}
	if n.Sweep != nil {
		if len(n.Sweep.N) > 0 {
			if !info.usesN {
				return nil, fmt.Errorf("scenario: sweep over n, but family %q is not parameterised by n", n.Graph.Family)
			}
			ns = n.Sweep.N
		}
		if len(n.Sweep.P) > 0 {
			if !info.usesP {
				return nil, fmt.Errorf("scenario: sweep over p, but family %q is not parameterised by p", n.Graph.Family)
			}
			ps = n.Sweep.P
		}
		if len(n.Sweep.Algorithms) > 0 {
			algos = n.Sweep.Algorithms
		}
	}
	total := len(ns) * len(ps) * len(algos)
	if total > MaxUnits {
		return nil, fmt.Errorf("scenario: sweep expands to %d units (max %d)", total, MaxUnits)
	}

	c := &Compiled{Spec: n, Units: make([]*Unit, 0, total), engine: engine}
	index := 0
	for _, algo := range algos {
		spec := mis.Spec{Name: algo}
		if n.Feedback != nil {
			spec.Feedback = mis.FeedbackConfig(*n.Feedback)
		}
		spec.Afek = mis.AfekOriginalConfig{StepsPerLevel: n.AfekStepsPerLevel}
		spec.FixedP = n.FixedP
		factory, bulk, err := mis.NewFactories(spec)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if n.Engine == "columnar" && bulk == nil {
			// Mirror sim.Run's refusal at submission time: a columnar
			// pin needs the algorithm's bulk kernel.
			return nil, fmt.Errorf("scenario: engine \"columnar\" requires a bulk kernel, which algorithm %q does not have (use auto)", algo)
		}
		for _, un := range ns {
			for _, up := range ps {
				if info.usesN && (un <= 0 || un > MaxNodes) {
					return nil, fmt.Errorf("scenario: n %d outside [1, %d]", un, MaxNodes)
				}
				if info.usesP && (up < 0 || up > 1) {
					return nil, fmt.Errorf("scenario: p %v outside [0, 1]", up)
				}
				if err := info.validate(n.Graph, un, up); err != nil {
					return nil, err
				}
				nodes := info.nodes(n.Graph, un)
				if nodes <= 0 || nodes > MaxNodes {
					return nil, fmt.Errorf("scenario: family %q instance has %d nodes (max %d)", n.Graph.Family, nodes, MaxNodes)
				}
				planned, err := admitFootprint(engine, bulk != nil, n.BeepLoss, n.Graph.Family, nodes, info.expectedEdges(n.Graph, un, up))
				if err != nil {
					return nil, err
				}
				if err := sim.ValidateCrashes(nodes, n.CrashAtRound); err != nil {
					return nil, fmt.Errorf("scenario: %w", err)
				}
				// Fault specs are validated per unit: wake/outage node
				// ids must be in range for every instance of a sweep,
				// and outages may not contradict the crash schedule.
				if err := n.Faults.Validate(nodes); err != nil {
					return nil, fmt.Errorf("scenario: %w", err)
				}
				if err := n.Faults.ValidateAgainstCrashes(n.CrashAtRound); err != nil {
					return nil, fmt.Errorf("scenario: %w", err)
				}
				c.Units = append(c.Units, &Unit{
					Index:         index,
					Algorithm:     algo,
					N:             un,
					P:             up,
					Nodes:         nodes,
					PlannedEngine: planned,
					graph:         n.Graph,
					info:          info,
					factory:       factory,
					bulk:          bulk,
					spec:          n,
				})
				index++
			}
		}
	}

	// Canonicalise the resolved spec (n carries the file digest), not
	// the raw input: the digest is part of the hash surface.
	canonical, err := n.Canonical()
	if err != nil {
		return nil, err
	}
	c.Canonical = canonical
	c.Hash = hashOf(canonical)
	return c, nil
}

// adjacencyBytes estimates the memory of the Graph's own adjacency
// lists: two int32 entries per edge plus a slice header per vertex. An
// instance needs this whatever engine runs it.
func adjacencyBytes(nodes int, expEdges float64) float64 {
	return 24*float64(nodes) + 8*expEdges
}

// plannedEngine resolves the engine the compiled plan expects to run:
// the pin itself when the spec names an engine, otherwise the shared
// auto heuristic (sim.ResolveEngineFromCounts) over the instance's
// node count and *expected* edge count — validation must not build
// graphs, and for the admission bound an estimate is exactly what is
// needed.
func plannedEngine(pin sim.Engine, hasBulk bool, beepLoss float64, nodes int, expEdges float64) sim.Engine {
	if pin != sim.EngineAuto {
		return pin
	}
	return sim.ResolveEngineFromCounts(nodes, int(math.Ceil(expEdges)), hasBulk, beepLoss, 0)
}

// admitFootprint bounds a unit by the estimated memory footprint of
// the representation its compiled plan will actually use — the
// adjacency lists every engine needs, plus the dense matrix for a
// bitset/columnar plan or the CSR edge array for a sparse one. This is
// what lets a sparse million-node spec through (its CSR is a few dozen
// MB) while an infeasible dense pin on the same graph still fails at
// submission time with the reason spelled out.
func admitFootprint(pin sim.Engine, hasBulk bool, beepLoss float64, family string, nodes int, expEdges float64) (sim.Engine, error) {
	planned := plannedEngine(pin, hasBulk, beepLoss, nodes, expEdges)
	adj := adjacencyBytes(nodes, expEdges)
	var rep float64
	switch planned {
	case sim.EngineBitset, sim.EngineColumnar:
		rep = float64(graph.MatrixBytes(nodes))
	case sim.EngineSparse:
		rep = float64(graph.CSRBytes(nodes, 0)) + 8*expEdges
	}
	if total := adj + rep; total > float64(MaxUnitMemory) {
		detail := fmt.Sprintf("≈%.3g expected edges need ≈%s of adjacency", expEdges, formatBytes(adj))
		if rep > 0 {
			detail = fmt.Sprintf("engine %q needs ≈%s for its %s on top of ≈%s of adjacency",
				planned, formatBytes(rep), representationName(planned), formatBytes(adj))
		}
		hint := ""
		if pin != sim.EngineAuto && pin != sim.EngineScalar && pin != sim.EngineSparse {
			hint = `; pin "sparse" or use "auto"`
		}
		return planned, fmt.Errorf("scenario: family %q instance (n=%d) exceeds the %s memory bound: %s%s",
			family, nodes, formatBytes(float64(MaxUnitMemory)), detail, hint)
	}
	return planned, nil
}

// representationName names an engine's adjacency representation for
// error messages.
func representationName(e sim.Engine) string {
	switch e {
	case sim.EngineBitset, sim.EngineColumnar:
		return "dense adjacency matrix"
	case sim.EngineSparse:
		return "CSR edge array"
	default:
		return "adjacency"
	}
}

// formatBytes renders a byte count in binary units for error messages.
func formatBytes(b float64) string {
	switch {
	case b >= float64(int64(1)<<40):
		return fmt.Sprintf("%.1f TiB", b/float64(int64(1)<<40))
	case b >= float64(int64(1)<<30):
		return fmt.Sprintf("%.1f GiB", b/float64(int64(1)<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", b/(1<<20))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
