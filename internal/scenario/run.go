package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"beepmis/internal/beep"
	"beepmis/internal/experiment"
	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/obs"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
	"beepmis/internal/stats"
)

// Stream slots of the per-(unit, trial) rng key. Graph generation, the
// simulation run, and wake-time draws are independent streams so adding
// or removing one never perturbs the others — the same discipline the
// experiment runners use.
const (
	slotGraph = 1
	slotRun   = 2
	slotWake  = 3
)

// trialKey derives the rng stream id of one (unit, trial, slot)
// triple. Units and trials are bounded (MaxUnits, MaxTrials) far below
// the field widths, so keys never collide.
func trialKey(unit, trial, slot int) uint64 {
	return uint64(unit)<<40 | uint64(trial)<<8 | uint64(slot)
}

// EventType enumerates progress event kinds.
type EventType string

const (
	// EventUnitStart opens a unit: N/P/Algorithm identify it.
	EventUnitStart EventType = "unit_start"
	// EventRound reports one completed simulation round. Emitted only
	// for single-trial units — a sweep of parallel trials would flood
	// the stream with interleaved rounds no client could order.
	EventRound EventType = "round"
	// EventTrial reports one completed trial.
	EventTrial EventType = "trial"
	// EventUnitDone closes a unit.
	EventUnitDone EventType = "unit_done"
)

// Event is one progress notification of a running scenario. Events are
// delivered from the goroutine running the trial; the callback must be
// safe for concurrent use when the spec runs parallel trials.
type Event struct {
	Type      EventType `json:"type"`
	Unit      int       `json:"unit"`
	Units     int       `json:"units"`
	Algorithm string    `json:"algorithm,omitempty"`
	N         int       `json:"n,omitempty"`
	P         float64   `json:"p,omitempty"`
	// Trial fields (EventTrial; also EventRound's trial).
	Trial  int `json:"trial,omitempty"`
	Trials int `json:"trials,omitempty"`
	// Round fields (EventRound).
	Round  int `json:"round,omitempty"`
	Active int `json:"active,omitempty"`
	// Completed-trial summary (EventTrial).
	Rounds  int `json:"rounds,omitempty"`
	SetSize int `json:"set_size,omitempty"`
}

// RunOptions tunes execution without touching semantics.
type RunOptions struct {
	// Workers overrides the spec's trial pool bound when > 0.
	Workers int
	// Progress, when non-nil, receives events as the run advances.
	Progress func(Event)
	// Metrics, when non-nil, receives engine instrumentation from every
	// trial (see sim.Options.Metrics). The bundle is lock-free, so one
	// bundle safely aggregates across the parallel trial pool; recording
	// never perturbs results, so the report bytes — and therefore the
	// service's cache soundness — are unchanged.
	Metrics *obs.EngineMetrics
}

// Agg is a deterministic aggregate over a unit's trials. Values are
// computed from trial results in index order, so they are identical for
// any worker count.
type Agg struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

func aggregate(vals []float64) Agg {
	if len(vals) == 0 {
		return Agg{}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return Agg{Mean: stats.Mean(vals), Std: stats.StdDev(vals), Min: lo, Max: hi}
}

// UnitReport is one unit's results.
type UnitReport struct {
	Unit      int     `json:"unit"`
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	P         float64 `json:"p,omitempty"`
	// Nodes/Edges/MaxDegree describe the instances: for pinned-seed (or
	// deterministic) families every trial shares one instance; for
	// per-trial random instances Edges and MaxDegree are trial means.
	Nodes     int     `json:"nodes"`
	Edges     float64 `json:"edges"`
	MaxDegree float64 `json:"max_degree"`
	Trials    int     `json:"trials"`
	Rounds    Agg     `json:"rounds"`
	Beeps     Agg     `json:"beeps_per_node"`
	SetSize   Agg     `json:"set_size"`
	// RoundsTail is the p50/p95/p99 of the per-trial round counts — the
	// distribution tail the robustness experiments report, where the
	// mean hides straggler trials.
	RoundsTail stats.Tail `json:"rounds_percentiles"`
	// StableRounds aggregates rounds-to-stable-MIS per trial: the last
	// round the membership changed, as observed by fault.Verifier. Under
	// faults this is the honest convergence metric — a set can look
	// finished, be perturbed by a reset, and be repaired later; the
	// plain Rounds number cannot tell.
	StableRounds Agg `json:"stable_rounds"`
	// TrialRounds is the per-trial round count, in trial order — the
	// raw series clients fit distributions to.
	TrialRounds []int `json:"trial_rounds"`
	// Verified reports that every trial's output passed graph.VerifyMIS.
	Verified bool `json:"verified"`
	// IndependentEveryRound reports that fault.Verifier observed no
	// independence breach in any round of any trial — stronger than
	// Verified, which only inspects the terminal state.
	IndependentEveryRound bool `json:"independent_every_round"`
	// IndependenceViolations totals the breaches across all trials.
	IndependenceViolations int `json:"independence_violations"`
	// MaximalAtTermination reports that every trial ended with every
	// non-member dominated, exempting permanently crashed nodes (which
	// graph.VerifyMIS cannot do — a crashed node needs no coverage).
	MaximalAtTermination bool `json:"maximal_at_termination"`
}

// Report is a completed scenario run. Its JSON serialisation is a pure
// function of the canonical spec: equal hashes produce byte-identical
// bytes (enforced by tests), which is what makes the service's result
// cache sound. That is also why the spec's free-form Name is absent
// here — it is excluded from the hash, so embedding it would let two
// same-hash submissions produce different bytes; names live on the
// service's job metadata instead.
type Report struct {
	Hash  string          `json:"hash"`
	Spec  json.RawMessage `json:"spec"`
	Units []UnitReport    `json:"units"`
}

// JSON returns the report's canonical byte serialisation (indented,
// trailing newline) — the bytes misrun prints and misd caches.
func (r *Report) JSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("scenario: encode report: %w", err)
	}
	return buf.Bytes(), nil
}

// WriteJSON writes the canonical report bytes to w.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Run executes a compiled scenario: units sequentially, each unit's
// trials on internal/experiment's bounded pool. ctx is checked between
// trials (a running simulation is not interrupted mid-round); on
// cancellation Run returns ctx.Err().
func Run(ctx context.Context, c *Compiled, opts RunOptions) (*Report, error) {
	spec := c.Spec
	workers := spec.Workers
	if opts.Workers > 0 {
		workers = opts.Workers
	}
	cfg := experiment.Config{Workers: workers}
	// emit stays nil without a Progress callback so the runner (and the
	// simulator's OnRound hook machinery) skips event work entirely.
	var emit func(Event)
	if progress := opts.Progress; progress != nil {
		emit = func(e Event) {
			e.Units = len(c.Units)
			progress(e)
		}
	}

	master := rng.New(spec.Seed)
	report := &Report{
		Hash:  c.Hash,
		Spec:  json.RawMessage(c.Canonical),
		Units: make([]UnitReport, 0, len(c.Units)),
	}

	for _, u := range c.Units {
		if emit != nil {
			emit(Event{Type: EventUnitStart, Unit: u.Index, Algorithm: u.Algorithm, N: u.N, P: u.P})
		}
		ur, err := runUnit(ctx, u, c.engine, master, cfg, emit, opts.Metrics)
		if err != nil {
			return nil, err
		}
		report.Units = append(report.Units, *ur)
		if emit != nil {
			emit(Event{Type: EventUnitDone, Unit: u.Index, Algorithm: u.Algorithm, N: u.N, P: u.P})
		}
	}
	return report, nil
}

// trialResult is one trial's slot; aggregation reads the slots in
// trial order after the pool drains.
type trialResult struct {
	rounds     int
	stable     int
	violations int
	maximal    bool
	beeps      float64
	setSize    int
	edges      int
	maxDeg     int
	verified   bool
}

func runUnit(ctx context.Context, u *Unit, engine sim.Engine, master *rng.Source, cfg experiment.Config, emit func(Event), metrics *obs.EngineMetrics) (*UnitReport, error) {
	spec := u.spec
	trials := spec.Trials
	slots := make([]trialResult, trials)

	// Engine options shared by every trial. Like the experiment
	// harness, an unset shard bound collapses to serial propagation
	// when the trial pool itself is parallel — sharding on top of
	// many workers oversubscribes the cores.
	simOpts := sim.Options{
		MaxRounds: spec.MaxRounds,
		Engine:    engine,
		Bulk:      u.bulk,
		Shards:    spec.Shards,
		BeepLoss:  spec.BeepLoss,
		Faults:    spec.Faults,
		Metrics:   metrics,
	}
	// A parallel trial pool claims the cores, so an unset shard bound
	// collapses to serial propagation — but only when there really are
	// multiple trials; a single-trial unit should keep the columnar
	// engine's sharded fan-out.
	poolWorkers := cfg.EffectiveWorkers()
	if simOpts.Shards == 0 && poolWorkers > 1 && trials > 1 {
		simOpts.Shards = 1
	}
	if len(spec.CrashAtRound) > 0 {
		simOpts.CrashAtRound = spec.CrashAtRound
	}

	// Pinned-seed graphs are generated once and shared read-only by
	// every trial: Graph is immutable and its lazy Matrix() cache is
	// sync.Once-guarded, so concurrent trials are safe.
	var pinned *graph.Graph
	if !u.info.random || u.graph.Seed != 0 {
		var src *rng.Source
		if u.info.random {
			src = rng.New(u.graph.Seed)
		}
		g, err := u.info.build(u.graph, u.N, u.P, src)
		if err != nil {
			return nil, fmt.Errorf("scenario: build graph: %w", err)
		}
		pinned = g
	}

	err := experiment.ForTrials(poolWorkers, trials, func(trial int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		g := pinned
		if g == nil {
			var err error
			g, err = u.info.build(u.graph, u.N, u.P, master.Stream(trialKey(u.Index, trial, slotGraph)))
			if err != nil {
				return fmt.Errorf("scenario: build graph (trial %d): %w", trial, err)
			}
		}
		opts := simOpts
		if spec.WakeWindow > 0 {
			wakeSrc := master.Stream(trialKey(u.Index, trial, slotWake))
			wake := make([]int, g.N())
			for v := range wake {
				wake[v] = 1 + wakeSrc.Intn(spec.WakeWindow)
			}
			opts.WakeAt = wake
		}
		if trials == 1 && emit != nil {
			opts.OnRound = func(s sim.Snapshot) {
				emit(Event{
					Type: EventRound, Unit: u.Index, Trial: trial, Trials: trials,
					Round: s.Round, Active: s.Active,
				})
			}
		}
		// Every trial runs under an incremental safety checker: O(Σ deg
		// of the joining frontier) per round, so noisy runs are judged
		// by what held throughout, not just by their terminal state.
		verifier := fault.NewVerifier(g)
		opts.OnMISDelta = verifier.ObserveRound
		res, err := sim.Run(g, u.factory, master.Stream(trialKey(u.Index, trial, slotRun)), opts)
		if err != nil {
			return fmt.Errorf("scenario: unit %d (algorithm %s, n=%d) trial %d: %w", u.Index, u.Algorithm, u.N, trial, err)
		}
		setSize := 0
		for _, in := range res.InMIS {
			if in {
				setSize++
			}
		}
		// Maximality exempts permanently crashed nodes — they neither
		// join nor need dominating, which plain VerifyMIS cannot know.
		var exempt graph.Bitset
		if len(spec.CrashAtRound) > 0 {
			exempt = graph.NewBitset(g.N())
			for v, st := range res.States {
				if st == beep.StateCrashed {
					exempt.Set(v)
				}
			}
		}
		slots[trial] = trialResult{
			rounds:     res.Rounds,
			stable:     verifier.LastChangeRound(),
			violations: verifier.ViolationCount(),
			maximal:    len(verifier.Uncovered(exempt)) == 0,
			beeps:      res.MeanBeepsPerNode(),
			setSize:    setSize,
			edges:      g.M(),
			maxDeg:     g.MaxDegree(),
			verified:   graph.VerifyMIS(g, res.InMIS) == nil,
		}
		if emit != nil {
			emit(Event{
				Type: EventTrial, Unit: u.Index, Trial: trial, Trials: trials,
				Rounds: res.Rounds, SetSize: setSize,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	ur := &UnitReport{
		Unit:                  u.Index,
		Algorithm:             u.Algorithm,
		N:                     u.N,
		P:                     u.P,
		Nodes:                 u.Nodes,
		Trials:                trials,
		TrialRounds:           make([]int, trials),
		Verified:              true,
		IndependentEveryRound: true,
		MaximalAtTermination:  true,
	}
	rounds := make([]float64, trials)
	stable := make([]float64, trials)
	beeps := make([]float64, trials)
	sizes := make([]float64, trials)
	var edges, maxDeg float64
	for i, s := range slots {
		ur.TrialRounds[i] = s.rounds
		rounds[i] = float64(s.rounds)
		stable[i] = float64(s.stable)
		beeps[i] = s.beeps
		sizes[i] = float64(s.setSize)
		edges += float64(s.edges)
		maxDeg += float64(s.maxDeg)
		ur.Verified = ur.Verified && s.verified
		ur.IndependenceViolations += s.violations
		ur.IndependentEveryRound = ur.IndependentEveryRound && s.violations == 0
		ur.MaximalAtTermination = ur.MaximalAtTermination && s.maximal
	}
	ur.Edges = edges / float64(trials)
	ur.MaxDegree = maxDeg / float64(trials)
	ur.Rounds = aggregate(rounds)
	ur.RoundsTail, _ = stats.Tails(rounds) // trials ≥ 1, never empty
	ur.StableRounds = aggregate(stable)
	ur.Beeps = aggregate(beeps)
	ur.SetSize = aggregate(sizes)
	return ur, nil
}
