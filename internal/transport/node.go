package transport

import (
	"fmt"
	"net"
	"time"

	"beepmis/internal/beep"
	"beepmis/internal/rng"
)

// NodeOptions configures RunNode.
type NodeOptions struct {
	// IOTimeout bounds each network operation; 0 means DefaultIOTimeout.
	IOTimeout time.Duration
}

// NodeResult is a single vertex's view of a finished distributed run.
type NodeResult struct {
	// InMIS reports whether this vertex joined the independent set.
	InMIS bool
	// State is the vertex's final lifecycle state.
	State beep.State
	// Rounds is the number of time steps this vertex participated in.
	Rounds int
	// Beeps is the number of first-exchange beeps this vertex emitted.
	Beeps int
}

// RunNode dials the coordinator at addr, claims vertexID, and runs
// factory's automaton for that vertex until the coordinator broadcasts
// stop. Randomness is drawn from src, which should be the per-vertex
// stream master.Stream(vertexID) to make a distributed run reproduce the
// simulator's execution.
func RunNode(addr string, vertexID int, factory beep.Factory, src *rng.Source, opts NodeOptions) (*NodeResult, error) {
	timeout := opts.IOTimeout
	if timeout <= 0 {
		timeout = DefaultIOTimeout
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("node dial: %w", err)
	}
	defer func() { _ = raw.Close() }()
	_ = raw.SetDeadline(time.Now().Add(timeout))
	fc := NewConn(raw)

	if err := fc.Send(Frame{Type: TypeHello, Payload: u32Payload(uint32(vertexID))}); err != nil {
		return nil, fmt.Errorf("node hello: %w", err)
	}
	welcome, err := fc.Recv()
	if err != nil {
		return nil, fmt.Errorf("node welcome: %w", err)
	}
	if welcome.Type == TypeReject {
		return nil, fmt.Errorf("transport: coordinator rejected vertex %d: %s", vertexID, welcome.Payload)
	}
	if welcome.Type != TypeWelcome {
		return nil, fmt.Errorf("%w: got type %d awaiting welcome", ErrBadFrame, welcome.Type)
	}
	vals, err := payloadU32s(welcome, 3)
	if err != nil {
		return nil, fmt.Errorf("node welcome: %w", err)
	}
	info := beep.NodeInfo{
		ID:        vertexID,
		N:         int(vals[0]),
		Degree:    int(vals[1]),
		MaxDegree: int(vals[2]),
	}
	auto := factory(info)

	res := &NodeResult{State: beep.StateActive}
	for {
		_ = raw.SetDeadline(time.Now().Add(timeout))
		f, err := fc.Recv()
		if err != nil {
			return nil, fmt.Errorf("node recv: %w", err)
		}
		switch f.Type {
		case TypeStop:
			res.InMIS = res.State == beep.StateInMIS
			return res, nil
		case TypeRound:
			if _, err := payloadU32s(f, 1); err != nil {
				return nil, fmt.Errorf("node round: %w", err)
			}
		default:
			return nil, fmt.Errorf("%w: unexpected type %d awaiting round", ErrBadFrame, f.Type)
		}
		res.Rounds++

		beeped := false
		if res.State == beep.StateActive {
			beeped = auto.Beep(src)
		}
		if beeped {
			res.Beeps++
		}
		if err := fc.Send(Frame{Type: TypeBeep, Payload: boolByte(beeped)}); err != nil {
			return nil, fmt.Errorf("node beep: %w", err)
		}
		heardFrame, err := fc.Expect(TypeHeard)
		if err != nil {
			return nil, fmt.Errorf("node heard: %w", err)
		}
		heard, err := payloadBool(heardFrame)
		if err != nil {
			return nil, fmt.Errorf("node heard: %w", err)
		}

		join := res.State == beep.StateActive && beeped && !heard
		if err := fc.Send(Frame{Type: TypeJoin, Payload: boolByte(join)}); err != nil {
			return nil, fmt.Errorf("node join: %w", err)
		}
		outcome, err := fc.Expect(TypeOutcome)
		if err != nil {
			return nil, fmt.Errorf("node outcome: %w", err)
		}
		if len(outcome.Payload) != 2 {
			return nil, fmt.Errorf("%w: outcome payload %d bytes", ErrBadFrame, len(outcome.Payload))
		}
		newState := beep.State(outcome.Payload[0])
		neighborJoined := outcome.Payload[1] != 0
		if res.State == beep.StateActive && newState == beep.StateActive {
			auto.Observe(beep.Outcome{Beeped: beeped, Heard: heard, NeighborJoined: neighborJoined})
		}
		res.State = newState
	}
}
