package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
)

// DefaultIOTimeout bounds each blocking network operation of the
// coordinator and node so a dead peer fails the run instead of hanging
// it.
const DefaultIOTimeout = 30 * time.Second

// ErrVertexClaimed indicates two connections claimed the same vertex.
var ErrVertexClaimed = errors.New("transport: vertex already claimed")

// CoordinatorOptions configures Serve.
type CoordinatorOptions struct {
	// MaxRounds caps the number of time steps; 0 means no cap beyond
	// 2^20.
	MaxRounds int
	// IOTimeout bounds each network read/write; 0 means
	// DefaultIOTimeout.
	IOTimeout time.Duration
}

// CoordinatorResult is the outcome of a distributed run.
type CoordinatorResult struct {
	// InMIS is the computed independent set, indexed by vertex.
	InMIS []bool
	// Rounds is the number of time steps executed.
	Rounds int
}

// Coordinator accepts one connection per vertex of its graph and drives
// the synchronous beeping rounds over the network.
type Coordinator struct {
	g  *graph.Graph
	ln net.Listener
}

// NewCoordinator starts listening on addr (e.g. "127.0.0.1:0") for the
// vertices of g. Close the coordinator to release the listener.
func NewCoordinator(g *graph.Graph, addr string) (*Coordinator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coordinator listen: %w", err)
	}
	return &Coordinator{g: g, ln: ln}, nil
}

// Addr returns the listening address, for nodes to dial.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close releases the listener.
func (c *Coordinator) Close() error { return c.ln.Close() }

// vertexConn is a connected, vertex-claimed peer.
type vertexConn struct {
	conn net.Conn
	fc   *Conn
}

// Serve accepts g.N() vertex connections, runs the protocol to
// completion, and returns the MIS. It must be called once.
func (c *Coordinator) Serve(opts CoordinatorOptions) (*CoordinatorResult, error) {
	timeout := opts.IOTimeout
	if timeout <= 0 {
		timeout = DefaultIOTimeout
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}
	n := c.g.N()
	conns := make([]*vertexConn, n)
	defer func() {
		for _, vc := range conns {
			if vc != nil {
				_ = vc.conn.Close()
			}
		}
	}()

	// Accept and handshake until every vertex is claimed. Connections
	// that fail before a well-formed hello (port scanners, health
	// probes, dropped dials) are tolerated and simply closed; protocol
	// violations after a valid hello — duplicate or out-of-range vertex
	// claims — indicate misconfiguration and abort the run.
	for claimed := 0; claimed < n; {
		raw, err := c.ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("coordinator accept: %w", err)
		}
		_ = raw.SetDeadline(time.Now().Add(timeout))
		fc := NewConn(raw)
		hello, err := fc.Expect(TypeHello)
		if err != nil {
			_ = raw.Close()
			continue
		}
		ids, err := payloadU32s(hello, 1)
		if err != nil {
			_ = raw.Close()
			continue
		}
		id := int(ids[0])
		if id < 0 || id >= n {
			err := fmt.Errorf("%w: hello for vertex %d with n=%d", graph.ErrVertexRange, id, n)
			_ = fc.Send(Frame{Type: TypeReject, Payload: []byte(err.Error())})
			_ = raw.Close()
			return nil, err
		}
		if conns[id] != nil {
			// Two node processes whose -vertices ranges overlap land
			// here; tell the second one why before aborting the run.
			err := fmt.Errorf("%w: vertex %d (another node process already hosts it — check -vertices ranges for overlap)", ErrVertexClaimed, id)
			_ = fc.Send(Frame{Type: TypeReject, Payload: []byte(err.Error())})
			_ = raw.Close()
			return nil, err
		}
		welcome := u32Payload(uint32(n), uint32(c.g.Degree(id)), uint32(c.g.MaxDegree()))
		if err := fc.Send(Frame{Type: TypeWelcome, Payload: welcome}); err != nil {
			_ = raw.Close()
			return nil, fmt.Errorf("handshake welcome: %w", err)
		}
		conns[id] = &vertexConn{conn: raw, fc: fc}
		claimed++
	}

	res := &CoordinatorResult{InMIS: make([]bool, n)}
	states := make([]beep.State, n)
	for v := range states {
		states[v] = beep.StateActive
	}
	active := n
	beeped := make([]bool, n)
	joined := make([]bool, n)

	// broadcast sends a frame to every vertex concurrently; gather reads
	// one expected frame from every vertex concurrently. Concurrency
	// matters here: with sequential I/O a slow peer would serialise the
	// whole round.
	broadcast := func(mk func(v int) Frame) error {
		return c.forAll(conns, timeout, func(v int, vc *vertexConn) error {
			return vc.fc.Send(mk(v))
		})
	}
	gatherBool := func(want uint8, into []bool) error {
		return c.forAll(conns, timeout, func(v int, vc *vertexConn) error {
			f, err := vc.fc.Expect(want)
			if err != nil {
				return err
			}
			b, err := payloadBool(f)
			if err != nil {
				return err
			}
			into[v] = b
			return nil
		})
	}

	round := 0
	for active > 0 && round < maxRounds {
		round++
		if err := broadcast(func(int) Frame {
			return Frame{Type: TypeRound, Payload: u32Payload(uint32(round))}
		}); err != nil {
			return nil, fmt.Errorf("round %d start: %w", round, err)
		}
		// First exchange.
		if err := gatherBool(TypeBeep, beeped); err != nil {
			return nil, fmt.Errorf("round %d beeps: %w", round, err)
		}
		if err := broadcast(func(v int) Frame {
			heard := false
			for _, w := range c.g.Neighbors(v) {
				if beeped[w] {
					heard = true
					break
				}
			}
			return Frame{Type: TypeHeard, Payload: boolByte(heard)}
		}); err != nil {
			return nil, fmt.Errorf("round %d heard: %w", round, err)
		}
		// Second exchange.
		if err := gatherBool(TypeJoin, joined); err != nil {
			return nil, fmt.Errorf("round %d joins: %w", round, err)
		}
		if err := broadcast(func(v int) Frame {
			neighborJoined := false
			for _, w := range c.g.Neighbors(v) {
				if joined[w] {
					neighborJoined = true
					break
				}
			}
			st := states[v]
			if st == beep.StateActive {
				switch {
				case joined[v]:
					st = beep.StateInMIS
				case neighborJoined:
					st = beep.StateDominated
				}
			}
			return Frame{Type: TypeOutcome, Payload: []byte{byte(st), boolByte(neighborJoined)[0]}}
		}); err != nil {
			return nil, fmt.Errorf("round %d outcome: %w", round, err)
		}
		// Apply transitions locally (the authoritative copy mirrors what
		// was just announced to the nodes).
		for v := 0; v < n; v++ {
			if states[v] != beep.StateActive {
				continue
			}
			nj := false
			for _, w := range c.g.Neighbors(v) {
				if joined[w] {
					nj = true
					break
				}
			}
			switch {
			case joined[v]:
				states[v] = beep.StateInMIS
				res.InMIS[v] = true
				active--
			case nj:
				states[v] = beep.StateDominated
				active--
			}
		}
	}
	res.Rounds = round
	if err := broadcast(func(int) Frame { return Frame{Type: TypeStop} }); err != nil {
		return nil, fmt.Errorf("stop broadcast: %w", err)
	}
	if active > 0 {
		return res, fmt.Errorf("transport: %d vertices still active after %d rounds", active, maxRounds)
	}
	return res, nil
}

// forAll runs fn for each vertex connection concurrently and returns the
// first error (if any) after all goroutines finish.
func (c *Coordinator) forAll(conns []*vertexConn, timeout time.Duration, fn func(v int, vc *vertexConn) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(conns))
	for v, vc := range conns {
		v, vc := v, vc
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = vc.conn.SetDeadline(time.Now().Add(timeout))
			errs[v] = fn(v, vc)
		}()
	}
	wg.Wait()
	for v, err := range errs {
		if err != nil {
			return fmt.Errorf("vertex %d: %w", v, err)
		}
	}
	return nil
}
