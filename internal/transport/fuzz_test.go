package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame asserts the frame decoder never panics or over-allocates
// on arbitrary byte streams, and that every frame it accepts re-encodes
// to the same bytes it consumed.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, Frame{Type: TypeHello, Payload: u32Payload(7)})
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 1, TypeStop})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		frame, err := ReadFrame(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		var buf bytes.Buffer
		if err := WriteFrame(&buf, frame); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:consumed]) {
			t.Fatalf("re-encode differs: %x vs %x", buf.Bytes(), data[:consumed])
		}
	})
}
