// Package transport provides a framed binary wire protocol and the
// coordinator/node roles that run the beeping MIS algorithms as an actual
// distributed system over TCP (or any net.Conn, including in-memory pipes
// for tests).
//
// Topology and round synchronisation live in a coordinator process: it
// knows the graph, accepts one connection per vertex, and per time step
// relays "did any neighbour beep" / "did any neighbour join" bits —
// exactly the information the beeping model grants a node. All
// algorithmic state and randomness stay at the nodes, so the coordinator
// is a stand-in for the radio medium, not for the algorithm.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds accepted frame payloads; anything larger indicates
// a corrupt or hostile peer.
const MaxFrameSize = 1 << 20

// Frame type identifiers.
const (
	// TypeHello is sent by a node to claim a vertex id. Payload:
	// uint32 vertex id.
	TypeHello uint8 = iota + 1
	// TypeWelcome is the coordinator's reply to a hello. Payload:
	// uint32 n, uint32 degree, uint32 max degree.
	TypeWelcome
	// TypeRound starts a time step. Payload: uint32 round number.
	TypeRound
	// TypeBeep carries a node's first-exchange bit. Payload: 1 byte
	// (0/1).
	TypeBeep
	// TypeHeard carries the coordinator's "some neighbour beeped" bit.
	// Payload: 1 byte.
	TypeHeard
	// TypeJoin carries a node's second-exchange announcement bit.
	// Payload: 1 byte.
	TypeJoin
	// TypeOutcome carries the coordinator's end-of-step verdict.
	// Payload: 1 byte state code (see beep.State), 1 byte
	// neighbour-joined bit.
	TypeOutcome
	// TypeStop ends the protocol. Payload: empty.
	TypeStop
	// TypeReject is the coordinator's refusal of a hello — the vertex
	// id was out of range or already claimed by another connection.
	// Payload: UTF-8 reason. Sent best-effort before the coordinator
	// closes the connection, so the misconfigured node process reports
	// the actual problem instead of an opaque EOF.
	TypeReject
)

// Errors matched by callers.
var (
	// ErrFrameTooLarge indicates a frame over MaxFrameSize.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
	// ErrBadFrame indicates a structurally invalid frame for the
	// expected type.
	ErrBadFrame = errors.New("transport: malformed frame")
)

// Frame is one wire message.
type Frame struct {
	// Type is one of the Type* constants.
	Type uint8
	// Payload is the type-specific body.
	Payload []byte
}

// WriteFrame writes f to w as [uint32 length][uint8 type][payload], all
// big-endian. Length counts the type byte plus payload.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.Payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(f.Payload)+1))
	hdr[4] = f.Type
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("write frame payload: %w", err)
		}
	}
	return nil
}

// ReadFrame reads one frame from r.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, fmt.Errorf("read frame header: %w", err)
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length < 1 {
		return Frame{}, fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	if length > MaxFrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, length)
	}
	f := Frame{Type: hdr[4]}
	if length > 1 {
		f.Payload = make([]byte, length-1)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, fmt.Errorf("read frame payload: %w", err)
		}
	}
	return f, nil
}

// Conn wraps an io.ReadWriter with buffering and frame helpers. It is not
// safe for concurrent use.
type Conn struct {
	r *bufio.Reader
	w *bufio.Writer
}

// NewConn wraps rw.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw)}
}

// Send writes a frame and flushes it.
func (c *Conn) Send(f Frame) error {
	if err := WriteFrame(c.w, f); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("flush frame: %w", err)
	}
	return nil
}

// Recv reads the next frame.
func (c *Conn) Recv() (Frame, error) { return ReadFrame(c.r) }

// Expect reads the next frame and checks its type.
func (c *Conn) Expect(want uint8) (Frame, error) {
	f, err := c.Recv()
	if err != nil {
		return Frame{}, err
	}
	if f.Type != want {
		return Frame{}, fmt.Errorf("%w: got type %d, want %d", ErrBadFrame, f.Type, want)
	}
	return f, nil
}

// boolByte encodes a bool as a payload byte.
func boolByte(b bool) []byte {
	if b {
		return []byte{1}
	}
	return []byte{0}
}

// payloadBool decodes a 1-byte bool payload.
func payloadBool(f Frame) (bool, error) {
	if len(f.Payload) != 1 {
		return false, fmt.Errorf("%w: bool frame with %d payload bytes", ErrBadFrame, len(f.Payload))
	}
	return f.Payload[0] != 0, nil
}

// u32Payload encodes values as consecutive big-endian uint32s.
func u32Payload(vals ...uint32) []byte {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(buf[4*i:], v)
	}
	return buf
}

// payloadU32s decodes a payload of exactly count uint32s.
func payloadU32s(f Frame, count int) ([]uint32, error) {
	if len(f.Payload) != 4*count {
		return nil, fmt.Errorf("%w: expected %d uint32s, payload %d bytes", ErrBadFrame, count, len(f.Payload))
	}
	out := make([]uint32, count)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(f.Payload[4*i:])
	}
	return out, nil
}
