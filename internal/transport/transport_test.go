package transport

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		{Type: TypeHello, Payload: u32Payload(42)},
		{Type: TypeStop},
		{Type: TypeBeep, Payload: []byte{1}},
		{Type: TypeWelcome, Payload: u32Payload(10, 3, 5)},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, Frame{Type: 1, Payload: make([]byte, MaxFrameSize+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
	// Forged oversized header on the read side.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read err = %v", err)
	}
}

func TestFrameZeroLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0, 1})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, Frame{Type: TypeBeep, Payload: []byte{1}})
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestPayloadHelpers(t *testing.T) {
	if b, err := payloadBool(Frame{Payload: []byte{1}}); err != nil || !b {
		t.Fatalf("payloadBool: %v %v", b, err)
	}
	if _, err := payloadBool(Frame{Payload: []byte{1, 2}}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
	vals, err := payloadU32s(Frame{Payload: u32Payload(7, 9)}, 2)
	if err != nil || vals[0] != 7 || vals[1] != 9 {
		t.Fatalf("payloadU32s: %v %v", vals, err)
	}
	if _, err := payloadU32s(Frame{Payload: []byte{0}}, 1); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

// runDistributed runs a full coordinator + per-vertex-goroutine
// deployment over loopback TCP and returns the coordinator result and
// each node's view.
func runDistributed(t *testing.T, g *graph.Graph, seed uint64) (*CoordinatorResult, []*NodeResult) {
	t.Helper()
	coord, err := NewCoordinator(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()

	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	master := rng.New(seed)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		nodeRes  = make([]*NodeResult, g.N())
		nodeErrs = make([]error, g.N())
	)
	for v := 0; v < g.N(); v++ {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunNode(coord.Addr(), v, factory, master.Stream(uint64(v)), NodeOptions{})
			mu.Lock()
			defer mu.Unlock()
			nodeRes[v] = res
			nodeErrs[v] = err
		}()
	}
	coordRes, err := coord.Serve(CoordinatorOptions{})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	for v, err := range nodeErrs {
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
	}
	return coordRes, nodeRes
}

func TestDistributedRunProducesMIS(t *testing.T) {
	g := graph.GNP(30, 0.3, rng.New(1))
	coordRes, nodeRes := runDistributed(t, g, 99)
	if err := graph.VerifyMIS(g, coordRes.InMIS); err != nil {
		t.Fatal(err)
	}
	for v, nr := range nodeRes {
		if nr.InMIS != coordRes.InMIS[v] {
			t.Fatalf("vertex %d: node view %v, coordinator view %v", v, nr.InMIS, coordRes.InMIS[v])
		}
		if nr.Rounds != coordRes.Rounds {
			t.Fatalf("vertex %d rounds %d, coordinator %d", v, nr.Rounds, coordRes.Rounds)
		}
		if !nr.State.Terminal() {
			t.Fatalf("vertex %d ended non-terminal", v)
		}
	}
}

// TestDistributedMatchesSimulator is the strongest transport test: the
// TCP deployment must reproduce the simulator's execution exactly, since
// the per-vertex randomness streams are identical.
func TestDistributedMatchesSimulator(t *testing.T) {
	g := graph.GNP(25, 0.4, rng.New(2))
	const seed = 1234
	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(g, factory, rng.New(seed), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coordRes, nodeRes := runDistributed(t, g, seed)
	if coordRes.Rounds != simRes.Rounds {
		t.Fatalf("rounds: tcp %d, sim %d", coordRes.Rounds, simRes.Rounds)
	}
	for v := range simRes.InMIS {
		if coordRes.InMIS[v] != simRes.InMIS[v] {
			t.Fatalf("vertex %d membership differs from simulator", v)
		}
		if nodeRes[v].Beeps != simRes.Beeps[v] {
			t.Fatalf("vertex %d beeps tcp %d, sim %d", v, nodeRes[v].Beeps, simRes.Beeps[v])
		}
	}
}

func TestDistributedSingleVertex(t *testing.T) {
	g := graph.Empty(1)
	coordRes, _ := runDistributed(t, g, 5)
	if !coordRes.InMIS[0] {
		t.Fatal("lone vertex must join")
	}
}

func TestCoordinatorRejectsDuplicateClaim(t *testing.T) {
	g := graph.Empty(2)
	coord, err := NewCoordinator(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()

	serveErr := make(chan error, 1)
	go func() {
		_, err := coord.Serve(CoordinatorOptions{})
		serveErr <- err
	}()

	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Two nodes claim vertex 0; whichever arrives second must sink the
	// run.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			_, _ = RunNode(coord.Addr(), 0, factory, rng.New(1), NodeOptions{})
		}()
	}
	if err := <-serveErr; !errors.Is(err, ErrVertexClaimed) {
		t.Fatalf("Serve err = %v, want ErrVertexClaimed", err)
	}
	<-done
	<-done
}

func TestCoordinatorRejectsOutOfRangeVertex(t *testing.T) {
	g := graph.Empty(1)
	coord, err := NewCoordinator(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	serveErr := make(chan error, 1)
	go func() {
		_, err := coord.Serve(CoordinatorOptions{})
		serveErr <- err
	}()
	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = RunNode(coord.Addr(), 5, factory, rng.New(1), NodeOptions{})
	}()
	if err := <-serveErr; !errors.Is(err, graph.ErrVertexRange) {
		t.Fatalf("Serve err = %v, want ErrVertexRange", err)
	}
}

// TestNodeSeesClearRejection pins the TypeReject path: a node process
// whose vertex is already hosted elsewhere (overlapping -vertices
// ranges) must learn why, not just read EOF.
func TestNodeSeesClearRejection(t *testing.T) {
	g := graph.Empty(2)
	coord, err := NewCoordinator(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	serveErr := make(chan error, 1)
	go func() {
		_, err := coord.Serve(CoordinatorOptions{})
		serveErr <- err
	}()
	// First claim of vertex 0 succeeds at handshake time.
	first, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = first.Close() }()
	fc := NewConn(first)
	if err := fc.Send(Frame{Type: TypeHello, Payload: u32Payload(0)}); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Expect(TypeWelcome); err != nil {
		t.Fatal(err)
	}
	// The overlapping second claim must get the reason back.
	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunNode(coord.Addr(), 0, factory, rng.New(1), NodeOptions{})
	if err == nil || !strings.Contains(err.Error(), "already hosts it") {
		t.Fatalf("duplicate claim error %v, want the overlap spelled out", err)
	}
	if err := <-serveErr; !errors.Is(err, ErrVertexClaimed) {
		t.Fatalf("Serve err = %v, want ErrVertexClaimed", err)
	}
}

// TestCoordinatorAbortsOnMidRoundDisconnect covers a peer that
// handshakes, participates in the opening exchange, and then drops its
// connection mid-round: the coordinator's deadline-bounded round I/O
// must abort the run with the failing vertex named — the same abort
// path a DefaultIOTimeout expiry takes — rather than hang the
// remaining peers.
func TestCoordinatorAbortsOnMidRoundDisconnect(t *testing.T) {
	g := graph.Path(2) // connected, so the survivor cannot finish alone
	coord, err := NewCoordinator(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	serveErr := make(chan error, 1)
	go func() {
		_, err := coord.Serve(CoordinatorOptions{IOTimeout: 2 * time.Second})
		serveErr <- err
	}()

	// Vertex 1 handshakes, answers the first beep exchange, then
	// disconnects without sending its join bit.
	quitter, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fc := NewConn(quitter)
	if err := fc.Send(Frame{Type: TypeHello, Payload: u32Payload(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Expect(TypeWelcome); err != nil {
		t.Fatal(err)
	}
	go func() {
		if _, err := fc.Expect(TypeRound); err != nil {
			_ = quitter.Close()
			return
		}
		_ = fc.Send(Frame{Type: TypeBeep, Payload: boolByte(false)})
		if _, err := fc.Expect(TypeHeard); err != nil {
			_ = quitter.Close()
			return
		}
		_ = quitter.Close() // gone before the join exchange
	}()

	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nodeErr := make(chan error, 1)
	go func() {
		_, err := RunNode(coord.Addr(), 0, factory, rng.New(1), NodeOptions{IOTimeout: 2 * time.Second})
		nodeErr <- err
	}()

	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("Serve succeeded despite a mid-round disconnect")
		}
		if !strings.Contains(err.Error(), "vertex 1") {
			t.Fatalf("abort error %v does not name the failing vertex", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve hung on a mid-round disconnect")
	}
	// The surviving node must also be released (error or stop), not hang.
	select {
	case <-nodeErr:
	case <-time.After(10 * time.Second):
		t.Fatal("surviving node hung after coordinator abort")
	}
}

func TestConnExpectWrongType(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Send(Frame{Type: TypeBeep, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Expect(TypeJoin); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestCoordinatorToleratesProbeConnections(t *testing.T) {
	g := graph.Empty(1)
	coord, err := NewCoordinator(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	serveRes := make(chan error, 1)
	go func() {
		_, err := coord.Serve(CoordinatorOptions{})
		serveRes <- err
	}()
	// A connect-and-close probe and a garbage writer must not kill the
	// run.
	probe, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_ = probe.Close()
	garbage, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = garbage.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	_ = garbage.Close()

	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunNode(coord.Addr(), 0, factory, rng.New(1), NodeOptions{}); err != nil {
		t.Fatalf("real node failed after probes: %v", err)
	}
	if err := <-serveRes; err != nil {
		t.Fatalf("Serve failed after probes: %v", err)
	}
}

func TestCoordinatorTimesOutStalledNode(t *testing.T) {
	g := graph.Empty(2)
	coord, err := NewCoordinator(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()
	serveRes := make(chan error, 1)
	go func() {
		_, err := coord.Serve(CoordinatorOptions{IOTimeout: 300 * time.Millisecond})
		serveRes <- err
	}()
	// Vertex 0 participates properly; vertex 1 claims its slot and then
	// stalls forever, so the coordinator's per-operation deadline must
	// fail the round rather than hang the run.
	stalled, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stalled.Close() }()
	fc := NewConn(stalled)
	if err := fc.Send(Frame{Type: TypeHello, Payload: u32Payload(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Expect(TypeWelcome); err != nil {
		t.Fatal(err)
	}

	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = RunNode(coord.Addr(), 0, factory, rng.New(1), NodeOptions{IOTimeout: 2 * time.Second})
	}()
	select {
	case err := <-serveRes:
		if err == nil {
			t.Fatal("Serve succeeded despite a stalled vertex")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve hung on a stalled vertex")
	}
}
