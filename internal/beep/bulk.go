package beep

import (
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// NetworkInfo is the static information available to a bulk automaton at
// start-up: the whole-network counterpart of NodeInfo. Degrees is indexed
// by node id and must not be modified.
type NetworkInfo struct {
	// N is the number of nodes in the network.
	N int
	// Degrees holds each node's degree.
	Degrees []int
	// MaxDegree is the maximum degree of the network.
	MaxDegree int
}

// BulkAutomaton is the columnar counterpart of Automaton: one object
// holding the algorithm state of every node as packed arrays, so the
// simulator's round loop can run as a handful of array sweeps instead of
// n interface calls. A bulk automaton must be observationally identical
// to n per-node automata: for any node v it draws from streams[v] exactly
// the values the per-node Beep would draw, in the same per-stream order,
// and applies exactly the per-node Observe update. The engine equivalence
// tests enforce this bit-for-bit.
type BulkAutomaton interface {
	// BeepAll decides this step's beeps for every node in active,
	// visiting nodes in increasing id order and drawing node v's
	// randomness from streams[v]. It sets out's bit for each beeper.
	// out is zeroed by the caller and has active's capacity; nodes
	// outside active must not be touched and must draw nothing.
	BeepAll(active graph.Bitset, streams []*rng.Source, out graph.Bitset)
	// ObserveAll delivers the step's outcome to every node in observed:
	// node v beeped iff beeped contains v and heard a neighbour iff
	// heard contains v. Nodes outside observed must not be updated.
	// (The engine owns the join rule, so an observed node never has a
	// joining neighbour — the NeighborJoined field of the per-node
	// Outcome is always false here, as in the per-node engines.)
	ObserveAll(observed, beeped, heard graph.Bitset)
}

// BulkRanger is optionally implemented by bulk automata whose draw and
// observe sweeps can be restricted to a word range of the node-id
// space: BeepRange and ObserveRange are BeepAll and ObserveAll limited
// to the nodes packed in mask words [loWord, hiWord). The simulator's
// round loop uses it to shard the eligible-draw and observe phases
// across cores: per-node state and per-node rng streams make every
// node's draw independent of every other node's, so disjoint word
// ranges processed concurrently produce bit-identical results to one
// serial sweep — the same argument that makes destination-sharded
// propagation deterministic.
//
// The contract mirrors BulkAutomaton's: within its range a call visits
// nodes in increasing id order, draws node v's randomness only from
// streams[v], touches only node v's packed state, and writes only the
// out/observed words inside [loWord, hiWord). Nodes outside the range
// must not be read, drawn for, or updated. A kernel whose per-node
// updates share mutable state across nodes cannot satisfy this and
// must not implement the interface; the round loop then falls back to
// the serial BeepAll/ObserveAll path.
type BulkRanger interface {
	// BeepRange is BeepAll restricted to the nodes in active's words
	// [loWord, hiWord).
	BeepRange(active graph.Bitset, streams []*rng.Source, out graph.Bitset, loWord, hiWord int)
	// ObserveRange is ObserveAll restricted to the nodes in observed's
	// words [loWord, hiWord).
	ObserveRange(observed, beeped, heard graph.Bitset, loWord, hiWord int)
}

// BulkProbabilityReporter is optionally implemented by bulk automata that
// expose their current beep probabilities; the tracer uses it to populate
// Snapshot.Probabilities exactly like the per-node ProbabilityReporter.
type BulkProbabilityReporter interface {
	// BeepProbabilities fills dst[v] with the probability that node v's
	// next BeepAll draw returns true. dst has one entry per node.
	BeepProbabilities(dst []float64)
}

// BulkResetter is optionally implemented by bulk automata whose nodes
// can be returned to their freshly-constructed state. The fault layer's
// transient-crash schedules with reset semantics require it: a reset
// recovery rebuilds the per-node automaton in the scalar engines, and
// the columnar engines must mirror that by restoring the node's packed
// state to exactly what the factory would have initialised — so a reset
// node behaves bit-identically across engines from its first
// post-recovery draw.
type BulkResetter interface {
	// ResetNodes restores each listed node's state to its initial
	// value, as if the bulk factory had just constructed it. Other
	// nodes must be untouched; no randomness may be drawn.
	ResetNodes(nodes []int)
}

// BulkFactory builds the bulk automaton covering all of a network's
// nodes. A nil BulkFactory means the algorithm has no columnar kernel
// and engines must fall back to per-node automata.
type BulkFactory func(net NetworkInfo) BulkAutomaton
