package beep

import "testing"

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StateActive:    "active",
		StateInMIS:     "in-mis",
		StateDominated: "dominated",
		StateCrashed:   "crashed",
		State(9):       "state(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestStateTerminal(t *testing.T) {
	if StateActive.Terminal() {
		t.Fatal("active must not be terminal")
	}
	for _, s := range []State{StateInMIS, StateDominated, StateCrashed} {
		if !s.Terminal() {
			t.Fatalf("%v must be terminal", s)
		}
	}
}

func TestStateZeroValueIsInvalid(t *testing.T) {
	// Enums start at one so the zero value is detectably uninitialised.
	var s State
	if s == StateActive || s == StateInMIS || s == StateDominated || s == StateCrashed {
		t.Fatal("zero State collides with a defined state")
	}
}
