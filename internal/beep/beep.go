// Package beep defines the synchronous beeping communication model that
// the paper's algorithms run in, following Afek et al. (DISC'11) and
// Scott, Jeavons & Xu (PODC'13).
//
// Time is divided into discrete steps. In each step every active node may
// emit a "beep" — a one-bit, anonymous broadcast heard by all of its
// neighbours. A step has two exchanges (Table 1 of the paper):
//
//  1. Each active node beeps with its current probability. Every node
//     then learns whether at least one neighbour beeped (it cannot tell
//     which, or how many).
//  2. A node that beeped and heard silence joins the MIS and announces it;
//     nodes hearing such an announcement become inactive as dominated
//     neighbours.
//
// The engine (internal/sim or internal/runtime) owns the join rule —
// "beeped and heard no beep ⇒ join" — which is common to the whole
// algorithm class. An Automaton only chooses when to beep and updates its
// internal state from the step's outcome. This keeps every schedule
// (local feedback, global sweep, fixed) expressible as a tiny automaton,
// exactly as simple as the biological analogue the paper describes.
package beep

import (
	"fmt"

	"beepmis/internal/rng"
)

// State is the lifecycle state of a node, mirroring Figure 2 of the
// paper.
type State uint8

const (
	// StateActive means the node is still competing.
	StateActive State = iota + 1
	// StateInMIS means the node joined the independent set (terminal).
	StateInMIS
	// StateDominated means a neighbour joined the MIS (terminal).
	StateDominated
	// StateCrashed means the node was killed by fault injection
	// (terminal; it neither beeps nor blocks its neighbours).
	StateCrashed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateInMIS:
		return "in-mis"
	case StateDominated:
		return "dominated"
	case StateCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s != StateActive }

// Outcome is everything a node observes about one time step.
type Outcome struct {
	// Beeped reports whether this node itself beeped in the first
	// exchange.
	Beeped bool
	// Heard reports whether at least one neighbour beeped in the first
	// exchange (after any fault injection).
	Heard bool
	// NeighborJoined reports whether at least one neighbour announced
	// joining the MIS in the second exchange.
	NeighborJoined bool
}

// Automaton is a node's algorithm: the probability schedule of the
// beeping MIS process. Implementations must be deterministic functions of
// their construction parameters, the provided randomness, and the
// sequence of Outcomes — the simulator and the concurrent runtime rely on
// this to produce identical executions from identical seeds.
//
// The engine calls Beep exactly once per time step while the node is
// active, then Observe exactly once with that step's outcome (unless the
// node reached a terminal state during the step).
type Automaton interface {
	// Beep decides whether the node beeps this step, drawing any needed
	// randomness from r.
	Beep(r *rng.Source) bool
	// Observe delivers the step's outcome so the automaton can adapt
	// (e.g. the paper's halve/double feedback rule).
	Observe(o Outcome)
}

// ProbabilityReporter is optionally implemented by automata that expose
// their current beep probability; the tracer and tests use it.
type ProbabilityReporter interface {
	// BeepProbability returns the probability with which the next Beep
	// call returns true.
	BeepProbability() float64
}

// NodeInfo is the static information available to a node at start-up.
// The paper's feedback algorithm needs none of it beyond the fields being
// available is deliberate: baselines such as the original Afek et al.
// algorithm require global knowledge (N and MaxDegree), and providing it
// through the same constructor keeps the comparison honest about what
// each algorithm assumes.
type NodeInfo struct {
	// ID is the node's index in [0, N).
	ID int
	// N is the number of nodes in the network.
	N int
	// Degree is the node's own degree.
	Degree int
	// MaxDegree is the maximum degree of the network.
	MaxDegree int
}

// Factory builds the automaton for one node. It must be safe to call
// concurrently for distinct nodes.
type Factory func(info NodeInfo) Automaton
