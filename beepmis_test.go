package beepmis

import (
	"bytes"
	"strings"
	"testing"
)

func TestSolveAllAlgorithms(t *testing.T) {
	g := GNP(100, 0.5, 1)
	for _, algo := range Algorithms() {
		res, err := Solve(g, algo, WithSeed(7))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := Verify(g, res.InMIS); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.SetSize() == 0 {
			t.Fatalf("%s: empty MIS on non-empty graph", algo)
		}
	}
}

func TestSolveUnknownAlgorithm(t *testing.T) {
	if _, err := Solve(GNP(5, 0.5, 1), Algorithm("nope")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSolveDeterministicAcrossEngines(t *testing.T) {
	g := GNP(60, 0.5, 2)
	a, err := Solve(g, AlgorithmFeedback, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, AlgorithmFeedback, WithSeed(9), WithConcurrentEngine())
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.TotalBeeps != b.TotalBeeps {
		t.Fatalf("engines disagree: %+v vs %+v", a, b)
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatalf("vertex %d differs across engines", v)
		}
	}
}

func TestSolveFeedbackConfig(t *testing.T) {
	g := GNP(80, 0.5, 3)
	res, err := Solve(g, AlgorithmFeedback, WithSeed(4), WithFeedbackConfig(FeedbackConfig{Factor: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g, AlgorithmFeedback, WithFeedbackConfig(FeedbackConfig{Factor: 0.5})); err == nil {
		t.Fatal("invalid feedback config accepted")
	}
}

func TestSolveMaxRounds(t *testing.T) {
	// K_40 cannot finish in 3 rounds with the sweep schedule (p=1 rounds
	// produce no joins); the cap must surface as an error.
	if _, err := Solve(Complete(40), AlgorithmGlobalSweep, WithMaxRounds(3)); err == nil {
		t.Fatal("round cap not enforced")
	}
}

func TestSolveLubyReportsBits(t *testing.T) {
	res, err := Solve(GNP(50, 0.5, 5), AlgorithmLubyPermutation, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.MessageBits == 0 {
		t.Fatal("Luby run reported no message bits")
	}
	if res.TotalBeeps != 0 {
		t.Fatal("Luby is not a beeping algorithm")
	}
}

func TestGraphConstructors(t *testing.T) {
	if g := GNP(10, 0, 1); g.N() != 10 || g.M() != 0 {
		t.Fatal("GNP")
	}
	if g := Grid(3, 3); g.N() != 9 {
		t.Fatal("Grid")
	}
	if g := Complete(5); g.M() != 10 {
		t.Fatal("Complete")
	}
	if g := CliqueFamily(64); g.N() == 0 {
		t.Fatal("CliqueFamily")
	}
	if g := UnitDisk(20, 0.3, 1); g.N() != 20 {
		t.Fatal("UnitDisk")
	}
	b := NewGraphBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g := b.Build(); g.M() != 1 {
		t.Fatal("builder")
	}
}

func TestEdgeListFacade(t *testing.T) {
	g := GNP(20, 0.3, 6)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("edge list round trip")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{InMIS: []bool{true, false, true, false}, TotalBeeps: 8}
	if r.SetSize() != 2 {
		t.Fatal("SetSize")
	}
	if r.MeanBeepsPerNode() != 2 {
		t.Fatal("MeanBeepsPerNode")
	}
	empty := &Result{}
	if empty.MeanBeepsPerNode() != 0 {
		t.Fatal("empty mean")
	}
}

func TestSolveGreedyNoRounds(t *testing.T) {
	res, err := Solve(Complete(10), AlgorithmGreedy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || res.SetSize() != 1 {
		t.Fatalf("greedy result %+v", res)
	}
}

func TestSolveConcurrentMaxRounds(t *testing.T) {
	// The round cap must also bind on the concurrent engine.
	_, err := Solve(Complete(30), AlgorithmGlobalSweep, WithMaxRounds(2), WithConcurrentEngine())
	if err == nil {
		t.Fatal("concurrent engine ignored the round cap")
	}
}

func TestSolveMetivier(t *testing.T) {
	g := GNP(70, 0.4, 9)
	res, err := Solve(g, AlgorithmMetivier, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
	if res.MessageBits == 0 || res.Rounds == 0 {
		t.Fatalf("metivier result incomplete: %+v", res)
	}
}

func TestSolveZeroVertexGraph(t *testing.T) {
	for _, algo := range Algorithms() {
		res, err := Solve(Complete(0), algo, WithSeed(1))
		if err != nil {
			t.Fatalf("%s on empty graph: %v", algo, err)
		}
		if res.SetSize() != 0 {
			t.Fatalf("%s found vertices in the empty graph", algo)
		}
	}
}

// TestSolveWithMetrics: the telemetry bundle records the run without
// changing it, and accumulates across runs when shared.
func TestSolveWithMetrics(t *testing.T) {
	g := GNP(90, 0.4, 6)
	plain, err := Solve(g, AlgorithmFeedback, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	m := &EngineMetrics{}
	res, err := Solve(g, AlgorithmFeedback, WithSeed(11), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != plain.Rounds || res.TotalBeeps != plain.TotalBeeps {
		t.Fatalf("metrics changed the result: %+v vs %+v", res, plain)
	}
	if got := m.Rounds.Value(); got != uint64(res.Rounds) {
		t.Fatalf("metrics rounds %d, want %d", got, res.Rounds)
	}
	if m.Runs.Value() != 1 {
		t.Fatalf("metrics runs %d, want 1", m.Runs.Value())
	}
	totals := m.PhaseTotals()
	if totals["propagate"] <= 0 || totals["eligible_draw"] <= 0 {
		t.Fatalf("phase totals recorded no time: %v", totals)
	}
	// The same bundle keeps counting across a second run.
	if _, err := Solve(g, AlgorithmFeedback, WithSeed(12), WithMetrics(m)); err != nil {
		t.Fatal(err)
	}
	if m.Runs.Value() != 2 {
		t.Fatalf("shared bundle runs %d, want 2", m.Runs.Value())
	}
	// Non-simulator paths accept the option and leave the bundle alone.
	idle := &EngineMetrics{}
	if _, err := Solve(g, AlgorithmGreedy, WithMetrics(idle)); err != nil {
		t.Fatal(err)
	}
	if idle.Runs.Value() != 0 || idle.Rounds.Value() != 0 {
		t.Fatalf("greedy touched the metrics bundle: runs=%d rounds=%d", idle.Runs.Value(), idle.Rounds.Value())
	}
}
