package beepmis

import "testing"

// TestEngineEquivalence asserts the public seed-equivalence contract:
// for every beeping algorithm, graph family, seed, and shard count, all
// engines — scalar, bitset, and columnar — produce identical Results.
// The families mirror the repository's generator catalogue; sizes
// straddle 64-bit word boundaries so packing bugs cannot hide.
func TestEngineEquivalence(t *testing.T) {
	families := []struct {
		name string
		g    *Graph
	}{
		{"gnp-190-half", GNP(190, 0.5, 1)},
		{"gnp-260-sparse", GNP(260, 0.03, 2)},
		{"grid-11x13", Grid(11, 13)},
		{"complete-96", Complete(96)},
		{"cliquefamily-343", CliqueFamily(343)},
		{"unitdisk-220", UnitDisk(220, 0.12, 3)},
	}
	algos := []Algorithm{AlgorithmFeedback, AlgorithmGlobalSweep, AlgorithmAfekOriginal}
	seeds := []uint64{0, 1, 42, 1 << 33}
	// Every engine the simulator offers, the sharded ones (columnar and
	// sparse) at shard counts bracketing serial, odd, and all-cores
	// sharding.
	variants := []struct {
		name string
		opts []Option
	}{
		{"bitset", []Option{WithEngine(EngineBitset)}},
		{"columnar-1", []Option{WithEngine(EngineColumnar), WithShards(1)}},
		{"columnar-3", []Option{WithEngine(EngineColumnar), WithShards(3)}},
		{"columnar-all", []Option{WithEngine(EngineColumnar)}},
		{"sparse-1", []Option{WithEngine(EngineSparse), WithShards(1)}},
		{"sparse-3", []Option{WithEngine(EngineSparse), WithShards(3)}},
		{"sparse-all", []Option{WithEngine(EngineSparse)}},
	}

	for _, fam := range families {
		for _, algo := range algos {
			for _, seed := range seeds {
				t.Run(fam.name+"/"+string(algo), func(t *testing.T) {
					scalar, err := Solve(fam.g, algo, WithSeed(seed), WithEngine(EngineScalar))
					if err != nil {
						t.Fatalf("scalar: %v", err)
					}
					if err := Verify(fam.g, scalar.InMIS); err != nil {
						t.Fatalf("seed %d: invalid MIS: %v", seed, err)
					}
					for _, variant := range variants {
						res, err := Solve(fam.g, algo, append([]Option{WithSeed(seed)}, variant.opts...)...)
						if err != nil {
							t.Fatalf("%s: %v", variant.name, err)
						}
						if scalar.Rounds != res.Rounds {
							t.Fatalf("seed %d %s: Rounds %d vs %d", seed, variant.name, scalar.Rounds, res.Rounds)
						}
						if scalar.TotalBeeps != res.TotalBeeps {
							t.Fatalf("seed %d %s: TotalBeeps %d vs %d", seed, variant.name, scalar.TotalBeeps, res.TotalBeeps)
						}
						for v := range scalar.InMIS {
							if scalar.InMIS[v] != res.InMIS[v] {
								t.Fatalf("seed %d %s: InMIS differs at vertex %d", seed, variant.name, v)
							}
						}
					}
				})
			}
		}
	}
}

// TestEngineEquivalenceUnderFaults extends the public seed-equivalence
// contract to the fault layer: for every fault-spec combination —
// channel noise, adversarial wake-up, transient outages with resets —
// all four simulator engines at several shard counts produce identical
// Results and RobustnessReports. This is the PR's acceptance matrix at
// the API level; the per-engine trace-level matrix lives in
// internal/sim.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	g := GNP(170, 0.25, 6)
	specs := []struct {
		name string
		spec FaultSpec
	}{
		{"noise", FaultSpec{Loss: 0.05, Spurious: 0.01}},
		{"wake-uniform", FaultSpec{Wake: &FaultWake{Kind: WakeUniform, Window: 10}}},
		{"wake-degree", FaultSpec{Wake: &FaultWake{Kind: WakeDegree, Window: 7}}},
		{"outages", FaultSpec{Outages: []FaultOutage{
			{Node: 3, From: 2, For: 4},
			{Node: 64, From: 1, For: 3, Reset: true},
		}}},
		{"combined", FaultSpec{
			Loss:     0.03,
			Spurious: 0.01,
			Wake:     &FaultWake{Kind: WakeUniform, Window: 5},
			Outages:  []FaultOutage{{Node: 10, From: 3, For: 4, Reset: true}},
		}},
	}
	variants := []struct {
		name string
		opts []Option
	}{
		{"bitset", []Option{WithEngine(EngineBitset)}},
		{"columnar-1", []Option{WithEngine(EngineColumnar), WithShards(1)}},
		{"columnar-3", []Option{WithEngine(EngineColumnar), WithShards(3)}},
		{"sparse-1", []Option{WithEngine(EngineSparse), WithShards(1)}},
		{"sparse-all", []Option{WithEngine(EngineSparse)}},
	}
	for _, fc := range specs {
		for _, algo := range []Algorithm{AlgorithmFeedback, AlgorithmGlobalSweep} {
			for _, seed := range []uint64{1, 99} {
				scalar, err := Solve(g, algo, WithSeed(seed), WithEngine(EngineScalar), WithFaults(fc.spec))
				if err != nil {
					t.Fatalf("%s/%s scalar: %v", fc.name, algo, err)
				}
				if scalar.Robustness == nil {
					t.Fatalf("%s/%s: faulty run returned no RobustnessReport", fc.name, algo)
				}
				for _, variant := range variants {
					res, err := Solve(g, algo, append([]Option{WithSeed(seed), WithFaults(fc.spec)}, variant.opts...)...)
					if err != nil {
						t.Fatalf("%s/%s/%s: %v", fc.name, algo, variant.name, err)
					}
					if scalar.Rounds != res.Rounds || scalar.TotalBeeps != res.TotalBeeps {
						t.Fatalf("%s/%s/%s seed %d: rounds %d vs %d, beeps %d vs %d",
							fc.name, algo, variant.name, seed, scalar.Rounds, res.Rounds, scalar.TotalBeeps, res.TotalBeeps)
					}
					for v := range scalar.InMIS {
						if scalar.InMIS[v] != res.InMIS[v] {
							t.Fatalf("%s/%s/%s seed %d: InMIS differs at vertex %d", fc.name, algo, variant.name, seed, v)
						}
					}
					if scalar.Robustness.StableRound != res.Robustness.StableRound ||
						scalar.Robustness.IndependenceViolations != res.Robustness.IndependenceViolations ||
						len(scalar.Robustness.Uncovered) != len(res.Robustness.Uncovered) {
						t.Fatalf("%s/%s/%s seed %d: robustness reports differ: %+v vs %+v",
							fc.name, algo, variant.name, seed, scalar.Robustness, res.Robustness)
					}
					for i, v := range scalar.Robustness.Uncovered {
						if res.Robustness.Uncovered[i] != v {
							t.Fatalf("%s/%s/%s seed %d: uncovered sets differ: %v vs %v",
								fc.name, algo, variant.name, seed, scalar.Robustness.Uncovered, res.Robustness.Uncovered)
						}
					}
				}
			}
		}
	}
}

// TestShardsConflicts pins the explicit rejections of WithShards
// combinations that have no sharded propagation to configure.
func TestShardsConflicts(t *testing.T) {
	g := GNP(40, 0.3, 2)
	if _, err := Solve(g, AlgorithmFeedback, WithSeed(1), WithShards(4), WithConcurrentEngine()); err == nil {
		t.Fatal("WithShards + WithConcurrentEngine was silently accepted")
	}
	if _, err := Solve(g, AlgorithmFeedback, WithSeed(1), WithShards(4), WithEngine(EngineScalar)); err == nil {
		t.Fatal("WithShards + WithEngine(EngineScalar) was silently accepted")
	}
	// Shards compose with the explicit sharded-engine pins and with auto.
	if _, err := Solve(g, AlgorithmFeedback, WithSeed(1), WithShards(4), WithEngine(EngineColumnar)); err != nil {
		t.Fatalf("WithShards + WithEngine(EngineColumnar): %v", err)
	}
	if _, err := Solve(g, AlgorithmFeedback, WithSeed(1), WithShards(4), WithEngine(EngineSparse)); err != nil {
		t.Fatalf("WithShards + WithEngine(EngineSparse): %v", err)
	}
	if _, err := Solve(g, AlgorithmFeedback, WithSeed(1), WithShards(4)); err != nil {
		t.Fatalf("WithShards alone: %v", err)
	}
}

// TestEnginePinConflictsWithConcurrent asserts the explicit rejection of
// an engine pin combined with the concurrent runtime, which has no
// simulator engine to pin.
func TestEnginePinConflictsWithConcurrent(t *testing.T) {
	g := GNP(40, 0.3, 2)
	_, err := Solve(g, AlgorithmFeedback, WithSeed(1), WithEngine(EngineBitset), WithConcurrentEngine())
	if err == nil {
		t.Fatal("WithEngine + WithConcurrentEngine was silently accepted")
	}
	// The auto pin is the no-op default and stays allowed.
	if _, err := Solve(g, AlgorithmFeedback, WithSeed(1), WithEngine(EngineAuto), WithConcurrentEngine()); err != nil {
		t.Fatalf("WithEngine(EngineAuto) + WithConcurrentEngine: %v", err)
	}
}

// TestEngineDefaultIsAuto pins the default Solve path to the same result
// as both explicit engines, so auto-selection can never change results.
func TestEngineDefaultIsAuto(t *testing.T) {
	g := GNP(300, 0.5, 9)
	def, err := Solve(g, AlgorithmFeedback, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{EngineAuto, EngineScalar, EngineBitset, EngineColumnar, EngineSparse} {
		res, err := Solve(g, AlgorithmFeedback, WithSeed(5), WithEngine(e))
		if err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
		if res.Rounds != def.Rounds || res.TotalBeeps != def.TotalBeeps {
			t.Fatalf("engine %v diverged from default: rounds %d vs %d, beeps %d vs %d",
				e, res.Rounds, def.Rounds, res.TotalBeeps, def.TotalBeeps)
		}
		for v := range def.InMIS {
			if res.InMIS[v] != def.InMIS[v] {
				t.Fatalf("engine %v: InMIS differs at vertex %d", e, v)
			}
		}
	}
}
