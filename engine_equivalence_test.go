package beepmis

import "testing"

// TestEngineEquivalence asserts the public seed-equivalence contract:
// for every beeping algorithm, graph family, and seed, the scalar and
// bitset engines produce identical Results. The families mirror the
// repository's generator catalogue; sizes straddle 64-bit word
// boundaries so packing bugs cannot hide.
func TestEngineEquivalence(t *testing.T) {
	families := []struct {
		name string
		g    *Graph
	}{
		{"gnp-190-half", GNP(190, 0.5, 1)},
		{"gnp-260-sparse", GNP(260, 0.03, 2)},
		{"grid-11x13", Grid(11, 13)},
		{"complete-96", Complete(96)},
		{"cliquefamily-343", CliqueFamily(343)},
		{"unitdisk-220", UnitDisk(220, 0.12, 3)},
	}
	algos := []Algorithm{AlgorithmFeedback, AlgorithmGlobalSweep, AlgorithmAfekOriginal}
	seeds := []uint64{0, 1, 42, 1 << 33}

	for _, fam := range families {
		for _, algo := range algos {
			for _, seed := range seeds {
				t.Run(fam.name+"/"+string(algo), func(t *testing.T) {
					scalar, err := Solve(fam.g, algo, WithSeed(seed), WithEngine(EngineScalar))
					if err != nil {
						t.Fatalf("scalar: %v", err)
					}
					bitset, err := Solve(fam.g, algo, WithSeed(seed), WithEngine(EngineBitset))
					if err != nil {
						t.Fatalf("bitset: %v", err)
					}
					if scalar.Rounds != bitset.Rounds {
						t.Fatalf("seed %d: Rounds %d vs %d", seed, scalar.Rounds, bitset.Rounds)
					}
					if scalar.TotalBeeps != bitset.TotalBeeps {
						t.Fatalf("seed %d: TotalBeeps %d vs %d", seed, scalar.TotalBeeps, bitset.TotalBeeps)
					}
					for v := range scalar.InMIS {
						if scalar.InMIS[v] != bitset.InMIS[v] {
							t.Fatalf("seed %d: InMIS differs at vertex %d", seed, v)
						}
					}
					if err := Verify(fam.g, bitset.InMIS); err != nil {
						t.Fatalf("seed %d: invalid MIS: %v", seed, err)
					}
				})
			}
		}
	}
}

// TestEnginePinConflictsWithConcurrent asserts the explicit rejection of
// an engine pin combined with the concurrent runtime, which has no
// simulator engine to pin.
func TestEnginePinConflictsWithConcurrent(t *testing.T) {
	g := GNP(40, 0.3, 2)
	_, err := Solve(g, AlgorithmFeedback, WithSeed(1), WithEngine(EngineBitset), WithConcurrentEngine())
	if err == nil {
		t.Fatal("WithEngine + WithConcurrentEngine was silently accepted")
	}
	// The auto pin is the no-op default and stays allowed.
	if _, err := Solve(g, AlgorithmFeedback, WithSeed(1), WithEngine(EngineAuto), WithConcurrentEngine()); err != nil {
		t.Fatalf("WithEngine(EngineAuto) + WithConcurrentEngine: %v", err)
	}
}

// TestEngineDefaultIsAuto pins the default Solve path to the same result
// as both explicit engines, so auto-selection can never change results.
func TestEngineDefaultIsAuto(t *testing.T) {
	g := GNP(300, 0.5, 9)
	def, err := Solve(g, AlgorithmFeedback, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{EngineAuto, EngineScalar, EngineBitset} {
		res, err := Solve(g, AlgorithmFeedback, WithSeed(5), WithEngine(e))
		if err != nil {
			t.Fatalf("engine %v: %v", e, err)
		}
		if res.Rounds != def.Rounds || res.TotalBeeps != def.TotalBeeps {
			t.Fatalf("engine %v diverged from default: rounds %d vs %d, beeps %d vs %d",
				e, res.Rounds, def.Rounds, res.TotalBeeps, def.TotalBeeps)
		}
		for v := range def.InMIS {
			if res.InMIS[v] != def.InMIS[v] {
				t.Fatalf("engine %v: InMIS differs at vertex %d", e, v)
			}
		}
	}
}
